"""Ingest nodes: the per-machine write path of the counting cluster.

An :class:`IngestNode` owns one :class:`~repro.analytics.counter_bank.
CounterBank` plus a *write buffer* in front of it.  The buffer coalesces
per-key increments (a hot key hit 10,000 times between flushes becomes one
``record(key, 10_000)`` call) and flushes in batches, so the expensive
counter updates run through the distribution-exact ``add`` fast-forward
instead of one transition per raw event.  This is the same batching real
ingest tiers do to survive heavy traffic, and here it is also the main
single-node throughput lever.

Because a node may crash, its bank can be captured into a
:class:`~repro.cluster.checkpoint.BankCheckpoint` and rebuilt from it; the
buffer is volatile by design (the simulation redelivers unacknowledged
events from the node's :class:`~repro.cluster.storage.WriteAheadLog` on
recovery — see :mod:`repro.cluster.storage` for where checkpoints and
the durable log live).

Counters are described by a :class:`CounterTemplate` — a serializable
(algorithm name, parameters) pair — rather than a bare factory closure, so
checkpoints can record how to rebuild every counter they contain.

Threading contract
------------------
An :class:`IngestNode` is **thread-confined, not thread-safe**: at any
moment at most one thread may touch it.  The parallel ingest pipeline
(:mod:`repro.cluster.pipeline`) honors this by chaining each node's
delivery batches onto one worker at a time and *draining* the node —
no batch in flight — before the coordinator flushes, checkpoints,
drains, or crash-recovers it (the drain handshake).  Nodes share no
state with each other, so confinement alone makes worker-sharded
delivery safe without any locking on this hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.analytics.counter_bank import CounterBank
from repro.core.base import ApproximateCounter, CounterSnapshot
from repro.core.factory import COUNTER_TYPES
from repro.errors import ParameterError
from repro.memory.model import SpaceModel
from repro.rng.bitstream import BitBudgetedRandom
from repro.rng.splitmix import derive_seed
from repro.stream.workload import KeyedEvent

__all__ = ["CounterTemplate", "IngestNode", "default_template"]

_WINDOW_SEED_KEY = 0x77696E64  # "wind"


@dataclass(frozen=True)
class CounterTemplate:
    """A serializable recipe for one counter: algorithm name + parameters.

    Unlike a factory closure, a template survives a round-trip through a
    checkpoint, so a recovering node can rebuild counters identical in
    kind to the ones it lost.

    >>> template = CounterTemplate("exact")
    >>> CounterTemplate.from_dict(template.to_dict()) == template
    True
    >>> CounterTemplate("no-such-algorithm")
    Traceback (most recent call last):
        ...
    repro.errors.ParameterError: unknown algorithm 'no-such-algorithm'; \
known: csuros, exact, morris, morris_plus, nelson_yu, saturating, \
simplified_ny
    """

    algorithm: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.algorithm not in COUNTER_TYPES:
            known = ", ".join(sorted(COUNTER_TYPES))
            raise ParameterError(
                f"unknown algorithm {self.algorithm!r}; known: {known}"
            )
        object.__setattr__(self, "params", dict(self.params))

    def build(self, rng: BitBudgetedRandom) -> ApproximateCounter:
        """Instantiate one counter on the given random source."""
        return COUNTER_TYPES[self.algorithm](**self.params, rng=rng)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {"algorithm": self.algorithm, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CounterTemplate":
        """Rebuild a template from :meth:`to_dict` output."""
        return cls(
            algorithm=data["algorithm"], params=dict(data.get("params", {}))
        )


def default_template(algorithm: str = "simplified_ny") -> CounterTemplate:
    """A sensible cluster template for each mergeable counter family.

    Cluster aggregation needs mergeable counters (Remark 2.4), so the
    NY-family presets enable ``mergeable=True``.

    >>> default_template("exact")
    CounterTemplate(algorithm='exact', params={})
    >>> default_template("simplified_ny").params["mergeable"]
    True
    """
    presets: dict[str, dict[str, Any]] = {
        "exact": {},
        "morris": {"a": 0.05},
        "morris_plus": {"a": 0.05},
        "simplified_ny": {"resolution": 1024, "mergeable": True},
        "nelson_yu": {
            "epsilon": 0.1,
            "delta_exponent": 10,
            "mergeable": True,
        },
    }
    if algorithm not in presets:
        known = ", ".join(sorted(presets))
        raise ParameterError(
            f"no cluster preset for {algorithm!r}; known: {known}"
        )
    return CounterTemplate(algorithm, presets[algorithm])


class IngestNode:
    """One cluster machine: a counter bank behind a coalescing write buffer.

    Parameters
    ----------
    node_id:
        Stable identifier used by the router and checkpoints.
    template:
        Counter recipe for the node's bank.
    seed:
        Bank seed (derive it from the cluster seed and ``node_id`` so
        nodes are independent but the deployment is reproducible).
    buffer_limit:
        Flush automatically once this many increments are buffered.
    track_truth:
        Keep exact shadow counts in the bank for evaluation.
    consume_mode:
        ``"skip_ahead"`` (default) flushes through the counters'
        geometric fast-forward ``add(n)``; ``"per_unit"`` pays one coin
        flip per unit instead — the reference arm the throughput bench
        compares against, not a production setting.
    """

    CONSUME_MODES = ("skip_ahead", "per_unit")

    def __init__(
        self,
        node_id: int,
        template: CounterTemplate,
        seed: int,
        buffer_limit: int = 512,
        track_truth: bool = True,
        consume_mode: str = "skip_ahead",
    ) -> None:
        if node_id < 0:
            raise ParameterError(f"node_id must be >= 0, got {node_id}")
        if buffer_limit < 1:
            raise ParameterError(
                f"buffer_limit must be >= 1, got {buffer_limit}"
            )
        if consume_mode not in self.CONSUME_MODES:
            known = ", ".join(self.CONSUME_MODES)
            raise ParameterError(
                f"consume_mode must be one of {known}, got {consume_mode!r}"
            )
        self._node_id = node_id
        self._template = template
        self._buffer_limit = buffer_limit
        self._consume_mode = consume_mode
        self._per_unit = consume_mode == "per_unit"
        self._bank = CounterBank(
            template.build, seed=seed, track_truth=track_truth
        )
        self._buffer: dict[str, int] = {}
        self._buffered = 0
        # Lifetime stats (restored from checkpoints on recovery).
        self.events_ingested = 0
        self.events_coalesced = 0
        self.n_flushes = 0

    # ------------------------------------------------------------------
    # identity and introspection
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        """This node's stable identifier."""
        return self._node_id

    @property
    def template(self) -> CounterTemplate:
        """The counter recipe used by this node's bank."""
        return self._template

    @property
    def bank(self) -> CounterBank:
        """The node's counter bank (flushed state only)."""
        return self._bank

    @property
    def buffer_limit(self) -> int:
        """Increments buffered before an automatic flush."""
        return self._buffer_limit

    @property
    def consume_mode(self) -> str:
        """How flushes hit the counters: ``skip_ahead`` or ``per_unit``."""
        return self._consume_mode

    @property
    def pending(self) -> int:
        """Increments sitting in the write buffer (not yet in the bank)."""
        return self._buffered

    # ------------------------------------------------------------------
    # write path (thread-confined: one thread per node at a time)
    # ------------------------------------------------------------------
    def submit(self, event: KeyedEvent) -> None:
        """Accept one event into the write buffer, flushing when full.

        ``events_coalesced`` counts events that merged into a key the
        buffer already held — the write amplification the coalescing
        buffer saves.  Like ``events_ingested`` it is a deterministic
        lifetime stat, persisted in checkpoints.
        """
        if event.count == 0:
            return
        buffered = self._buffer.get(event.key)
        if buffered is None:
            self._buffer[event.key] = event.count
        else:
            self._buffer[event.key] = buffered + event.count
            self.events_coalesced += 1
        self._buffered += event.count
        self.events_ingested += event.count
        if self._buffered >= self._buffer_limit:
            self.flush()

    def submit_all(self, events: Iterable[KeyedEvent]) -> int:
        """Accept a batch of events; returns the increments accepted."""
        before = self.events_ingested
        for event in events:
            self.submit(event)
        return self.events_ingested - before

    def submit_counts(self, pairs: Iterable[tuple[str, int]]) -> int:
        """Accept ``(key, count)`` pairs — :meth:`submit` without events.

        Bit-identical to submitting one :class:`KeyedEvent` per pair in
        the given order (same buffer state, same flush timing, same
        lifetime stats), with the per-event object construction and
        method dispatch flattened out.  This is the delivery-batch hot
        path of the process plan's workers.
        """
        buffer = self._buffer
        limit = self._buffer_limit
        before = self.events_ingested
        ingested = before
        coalesced = self.events_coalesced
        buffered = self._buffered
        for key, count in pairs:
            if count == 0:
                continue
            held = buffer.get(key)
            if held is None:
                buffer[key] = count
            else:
                buffer[key] = held + count
                coalesced += 1
            buffered += count
            ingested += count
            if buffered >= limit:
                self._buffered = buffered
                self.events_ingested = ingested
                self.events_coalesced = coalesced
                self.flush()
                buffered = 0
        self._buffered = buffered
        self.events_ingested = ingested
        self.events_coalesced = coalesced
        return ingested - before

    def flush(self) -> int:
        """Apply the coalesced buffer to the bank; returns increments.

        Keys are applied in sorted order so a flush is deterministic no
        matter what order events arrived in.  The flattened
        :meth:`~repro.analytics.counter_bank.CounterBank.consume_counts`
        pass is bit-identical to recording each key in that order.
        """
        if not self._buffer:
            return 0
        flushed = self._buffered
        self._bank.consume_counts(
            sorted(self._buffer.items()), per_unit=self._per_unit
        )
        self._buffer.clear()
        self._buffered = 0
        self.n_flushes += 1
        return flushed

    # ------------------------------------------------------------------
    # key migration (elastic scaling)
    # ------------------------------------------------------------------
    def drain(
        self, keys: Iterable[str]
    ) -> list[tuple[str, CounterSnapshot, int | None]]:
        """Flush, then evict ``keys``, returning their transfer records.

        Each record is ``(key, snapshot, truth)`` — the counter's
        serializable snapshot plus its exact shadow count (``None`` when
        the bank does not track truth) — sorted by key for determinism.
        Keys this node never materialized are silently skipped, so a
        rebalance plan may over-approximate.  After a drain the node no
        longer answers for those keys; the caller must deliver every
        record to the new owner (see
        :meth:`absorb` and :mod:`repro.cluster.rebalance`).

        >>> node = IngestNode(0, CounterTemplate("exact"), seed=1)
        >>> node.submit_all([KeyedEvent("a", 4), KeyedEvent("b", 2)])
        6
        >>> [(k, t) for k, _, t in node.drain(["a", "unseen"])]
        [('a', 4)]
        >>> node.estimate("a")
        0.0
        """
        self.flush()
        records: list[tuple[str, CounterSnapshot, int | None]] = []
        for key in sorted(set(keys)):
            removed = self._bank.remove(key)
            if removed is None:
                continue
            counter, truth = removed
            records.append((key, counter.snapshot(), truth))
        return records

    def absorb(
        self,
        key: str,
        counter: ApproximateCounter,
        truth: int | None = None,
    ) -> None:
        """Merge a migrated counter (and its truth) into this node's bank.

        The key's local counter is materialized (at count 0, on the
        bank's usual derived stream) if absent, then ``counter`` is
        merged in — distribution-exact by Remark 2.4, so migration costs
        nothing in accuracy.  ``truth`` (from the source's shadow
        counts) is added to the local shadow count when both sides track
        it; if the source did *not* track truth (``truth=None``) but
        this bank does, the migrated increments are unknowable and the
        local shadow count undercounts from here on — mixed-tracking
        clusters should treat error reports as approximate.

        >>> src = IngestNode(0, CounterTemplate("exact"), seed=1)
        >>> src.submit(KeyedEvent("a", 4))
        >>> dst = IngestNode(1, CounterTemplate("exact"), seed=2)
        >>> dst.submit(KeyedEvent("a", 1))
        >>> for k, snap, t in src.drain(["a"]):
        ...     from repro.core.factory import COUNTER_TYPES
        ...     moved = COUNTER_TYPES[snap.algorithm](**snap.params, seed=9)
        ...     moved.restore(snap)
        ...     dst.absorb(k, moved, truth=t)
        >>> dst.flush() and dst.estimate("a")
        5.0
        """
        target = self._bank.materialize(key)
        target.merge_from(counter)
        if truth is not None and self._bank.tracks_truth:
            self._bank.set_truth(key, self._bank.truth(key) + truth)

    def adopt_bank(self, bank: CounterBank) -> None:
        """Install a restored bank (crash recovery), dropping the buffer.

        The buffer is volatile by design — events that were only buffered
        at crash time must be redelivered by the caller's durable log.
        """
        self._buffer.clear()
        self._buffered = 0
        self._bank = bank

    # ------------------------------------------------------------------
    # volatile-state transfer (process deployment)
    # ------------------------------------------------------------------
    def export_volatile(self) -> dict[str, Any]:
        """The node's state a bank checkpoint does *not* carry, JSON-safe.

        A checkpoint captures the flushed bank; the coalescing buffer
        and the lifetime stats live outside it.  The process transport
        (:mod:`repro.cluster.transport`) ships both halves together —
        checkpoint line plus this document — so a coordinator mirror
        and a worker replica can exchange a node's exact state.

        >>> node = IngestNode(0, CounterTemplate("exact"), seed=1)
        >>> node.submit(KeyedEvent("a", 3))
        >>> node.export_volatile()["buffer"]
        {'a': 3}
        """
        return {
            "buffer": dict(self._buffer),
            "buffered": self._buffered,
            "stats": {
                "events_ingested": self.events_ingested,
                "events_coalesced": self.events_coalesced,
                "n_flushes": self.n_flushes,
            },
        }

    def install_volatile(self, state: Mapping[str, Any]) -> None:
        """Install an :meth:`export_volatile` document verbatim.

        Overwrites the buffer and lifetime stats; the caller pairs this
        with :meth:`adopt_bank` to transplant a node's full state.
        """
        buffer = state["buffer"]
        self._buffer = {str(key): int(count) for key, count in buffer.items()}
        self._buffered = int(state["buffered"])
        stats = state["stats"]
        self.events_ingested = int(stats["events_ingested"])
        self.events_coalesced = int(stats["events_coalesced"])
        self.n_flushes = int(stats["n_flushes"])

    def reset(self, window: int = 1) -> None:
        """Start a new counting window: drop the buffer, fresh empty bank.

        The new bank's seed derives from the old one and ``window``, so
        successive windows are deterministic yet use unrelated random
        streams (the same convention as
        :meth:`~repro.analytics.sharding.ShardedCounter.reset`).  Lifetime
        stats (``events_ingested``, ``events_coalesced``, ``n_flushes``)
        are preserved.
        """
        old = self._bank
        self._buffer.clear()
        self._buffered = 0
        self._bank = CounterBank(
            self._template.build,
            seed=derive_seed(old.seed, _WINDOW_SEED_KEY, window),
            track_truth=old.tracks_truth,
        )

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def estimate(self, key: str) -> float:
        """Estimated count for ``key`` including buffered increments.

        The flushed estimate comes from the bank; buffered increments are
        added exactly (they have not gone through the counter yet, so no
        approximation has touched them).
        """
        return self._bank.estimate(key) + float(self._buffer.get(key, 0))

    def state_bits(self, model: SpaceModel = SpaceModel.AUTOMATON) -> int:
        """Approximate-counter memory held by this node, in bits."""
        return self._bank.total_state_bits(model)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IngestNode(id={self._node_id}, keys={len(self._bank)}, "
            f"pending={self._buffered}, ingested={self.events_ingested})"
        )
