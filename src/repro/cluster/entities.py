"""Typed view models for the cluster's public read surface.

The query API (:mod:`repro.cluster.query`), the HTTP frontend
(:mod:`repro.cluster.httpd`), the CLI, and the bench suite all answer
reads with the same four frozen dataclasses instead of ad-hoc dicts —
the entity half of an entity/serializer split.  Each entity knows how
to render itself as a *strict-JSON* payload (``to_payload``; plain
dicts of str/int/float/None, no NaN/Infinity — the repo-wide artifact
convention), and :func:`dump_strict_json` is the one shared encoder.

Every read answer carries a :class:`StalenessInfo` stamp saying *how*
it was produced: ``consistency="replica"`` answers came from one
node's gossip digest and may lag the live cluster by up to
``lag_events`` events; ``consistency="consistent"`` answers paid for a
central fold and lag by zero.  The stamp is data, not behavior — the
read paths live in :class:`~repro.cluster.query.ClusterReader`.

>>> staleness = StalenessInfo(
...     consistency="consistent", replica=None, lag_events=0,
...     bound_events=None, epoch=0)
>>> KeyCount(key="alpha", estimate=3.0, truth=3).to_payload()
{'key': 'alpha', 'estimate': 3.0, 'truth': 3}
>>> dump_strict_json(staleness.to_payload())
'{"bound_events": null, "consistency": "consistent", "epoch": 0, \
"lag_events": 0, "replica": null}'
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.aggregator import GlobalView

__all__ = [
    "KeyCount",
    "StalenessInfo",
    "TopK",
    "ViewSnapshot",
    "dump_strict_json",
]

#: The two read modes every query accepts (see ``docs/serving.md``).
READ_CONSISTENCY = ("replica", "consistent")


def dump_strict_json(payload: Any) -> str:
    """Encode one entity payload as strict JSON (no NaN/Infinity).

    >>> dump_strict_json({"b": 1, "a": None})
    '{"a": null, "b": 1}'
    """
    return json.dumps(payload, sort_keys=True, allow_nan=False)


@dataclass(frozen=True)
class StalenessInfo:
    """How one read answer was produced and how stale it may be.

    ``lag_events`` is the *reported bound*: the answer may be missing at
    most that many delivered events (0 for consistent reads, and for a
    converged replica).  ``bound_events`` echoes the configured gossip
    cadence (``gossip_every``) when known — the window within which a
    quiescent replica's lag is refreshed — or ``None``.
    """

    consistency: str
    replica: int | None
    lag_events: int
    bound_events: int | None
    epoch: int

    def __post_init__(self) -> None:
        if self.consistency not in READ_CONSISTENCY:
            known = ", ".join(READ_CONSISTENCY)
            raise ParameterError(
                f"unknown consistency {self.consistency!r}; known: {known}"
            )
        if self.lag_events < 0:
            raise ParameterError(
                f"lag_events must be >= 0, got {self.lag_events}"
            )

    def to_payload(self) -> dict[str, Any]:
        """Strict-JSON representation."""
        return {
            "consistency": self.consistency,
            "replica": self.replica,
            "lag_events": self.lag_events,
            "bound_events": self.bound_events,
            "epoch": self.epoch,
        }


@dataclass(frozen=True)
class KeyCount:
    """One key's estimated count (plus exact truth when tracked).

    ``staleness`` is stamped on top-level answers; entries nested in a
    :class:`TopK` or :class:`ViewSnapshot` leave it ``None`` and share
    their container's stamp.
    """

    key: str
    estimate: float
    truth: int | None = None
    staleness: StalenessInfo | None = None

    def to_payload(self) -> dict[str, Any]:
        """Strict-JSON representation (stamp omitted when unset)."""
        payload: dict[str, Any] = {
            "key": self.key,
            "estimate": self.estimate,
            "truth": self.truth,
        }
        if self.staleness is not None:
            payload["staleness"] = self.staleness.to_payload()
        return payload

    @classmethod
    def from_view(
        cls,
        view: "GlobalView",
        key: str,
        staleness: StalenessInfo | None = None,
    ) -> "KeyCount":
        """The entity for one key of a folded ``GlobalView``."""
        truth = None
        if view.truth is not None:
            truth = view.truth.get(key, 0)
        return cls(
            key=key,
            estimate=view.estimate(key),
            truth=truth,
            staleness=staleness,
        )


@dataclass(frozen=True)
class TopK:
    """The ``k`` heaviest keys, heaviest first (ties broken by key)."""

    k: int
    entries: tuple[KeyCount, ...]
    staleness: StalenessInfo | None = None

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ParameterError(f"k must be >= 0, got {self.k}")

    def to_payload(self) -> dict[str, Any]:
        """Strict-JSON representation."""
        payload: dict[str, Any] = {
            "k": self.k,
            "entries": [entry.to_payload() for entry in self.entries],
        }
        if self.staleness is not None:
            payload["staleness"] = self.staleness.to_payload()
        return payload

    @classmethod
    def from_view(
        cls,
        view: "GlobalView",
        k: int,
        staleness: StalenessInfo | None = None,
    ) -> "TopK":
        """The entity for ``view.top_keys(k)``."""
        entries = tuple(
            KeyCount.from_view(view, key) for key, _ in view.top_keys(k)
        )
        return cls(k=k, entries=entries, staleness=staleness)


@dataclass(frozen=True)
class ViewSnapshot:
    """A whole folded view as data: every key's estimate (+ truth).

    ``counts``/``truth`` are stored as sorted key/value pair tuples so
    the entity stays hashable and deterministic; :meth:`estimates` and
    :meth:`fingerprint` give the dict shapes the rest of the repo uses.
    """

    counts: tuple[tuple[str, float], ...]
    truth: tuple[tuple[str, int], ...] | None
    epoch: int
    merge_rounds: int
    staleness: StalenessInfo | None = None

    @property
    def n_keys(self) -> int:
        """Number of keys the snapshot covers."""
        return len(self.counts)

    def estimates(self) -> dict[str, float]:
        """Key → estimate mapping."""
        return dict(self.counts)

    def fingerprint(
        self,
    ) -> tuple[dict[str, float], dict[str, int] | None]:
        """The repo's bit-identity convention: ``(estimates, truth)``
        — comparable against
        :func:`~repro.cluster.aggregator.view_fingerprint` output."""
        truth = dict(self.truth) if self.truth is not None else None
        return self.estimates(), truth

    def to_payload(self) -> dict[str, Any]:
        """Strict-JSON representation."""
        payload: dict[str, Any] = {
            "n_keys": self.n_keys,
            "epoch": self.epoch,
            "merge_rounds": self.merge_rounds,
            "counts": {key: value for key, value in self.counts},
            "truth": (
                {key: value for key, value in self.truth}
                if self.truth is not None
                else None
            ),
        }
        if self.staleness is not None:
            payload["staleness"] = self.staleness.to_payload()
        return payload

    @classmethod
    def from_view(
        cls,
        view: "GlobalView",
        staleness: StalenessInfo | None = None,
    ) -> "ViewSnapshot":
        """The entity for a folded ``GlobalView``."""
        counts = tuple(
            (key, view.estimate(key)) for key in sorted(view.counters)
        )
        truth = None
        if view.truth is not None:
            truth = tuple(
                (key, view.truth[key]) for key in sorted(view.truth)
            )
        return cls(
            counts=counts,
            truth=truth,
            epoch=view.epoch,
            merge_rounds=view.merge_rounds,
            staleness=staleness,
        )
