"""Wire protocol for the process deployment: checksummed, framed messages.

The :class:`~repro.cluster.pipeline.ProcessPlan` coordinator and the
per-node worker subprocesses (:mod:`repro.cluster.worker`) speak a small
message protocol over byte streams (stdin/stdout pipes, or a Unix socket
for ``cluster serve`` daemons).  Every message is one *frame*:

    ``[4-byte big-endian payload length][payload bytes]``

The payload is the UTF-8 encoding of a checksummed JSON line produced by
:func:`repro.core.codec.encode_checksummed_line` — the same envelope the
durable records (checkpoints, migration batches, the manifest) already
use — so a truncated pipe, a bit flip in flight, or a foreign speaker
raises :class:`~repro.errors.StateError` instead of corrupting a node.
The decoded body always carries ``{"v": <version>, "type": <name>}``
plus type-specific fields; unknown versions and unknown message types
are refused loudly.

Message types
-------------
``init``/``ok``/``error`` bring a worker up and report failures;
``deliver_batch`` ships routed events (pipelined — no reply — so the
hot path pays one frame per ``delivery_batch`` events, not one
round-trip per event); ``drain``/``drain_ack`` is the sync handshake
(a worker services frames in order, so the ack proves every prior
batch has been applied); ``checkpoint_fence``/``checkpoint_reply``
runs the flush-and-capture half of a checkpoint inside the worker;
``snapshot_request``/``snapshot_reply`` and ``adopt_state`` move a
node's full state (bank checkpoint line + volatile buffer) between
coordinator and worker; ``migrate_out``/``migrate_reply`` and
``absorb`` carry live key migration as
:class:`~repro.cluster.rebalance.MigrationBatch` wire lines;
``metrics_pull``/``metrics_reply`` collects a worker's stage-timing
snapshot; ``ping``/``pong`` is the liveness probe ``cluster serve
status`` uses; ``shutdown``/``bye`` ends a worker cleanly.

Framing is deliberately independent of the event loop: frames can be
written to any ``.write()``/``.flush()`` object and read from any
``.read()`` object, including sockets via :meth:`FrameStream.
from_socket`.  :func:`read_frame` tolerates arbitrarily fragmented
reads (a ``read(n)`` returning fewer bytes than asked is retried), so
interleaved partial delivery — the normal case on a busy pipe — never
desyncs the stream; only genuine mid-frame EOF is an error.
"""

from __future__ import annotations

import socket
import struct
from typing import Any, BinaryIO, Mapping

from repro.core.codec import (
    decode_checksummed_line,
    encode_checksummed_line,
)
from repro.errors import ParameterError, StateError

__all__ = [
    "FRAME_TYPES",
    "FRAME_VERSION",
    "MAX_FRAME_BYTES",
    "FrameStream",
    "decode_frame_payload",
    "encode_frame",
    "read_frame",
    "write_frame",
]

FRAME_VERSION = 1
_FRAME_CHECKSUM_SEED = 0x9B1D77A446524D45  # low bits spell "FRME"
_LENGTH = struct.Struct(">I")

#: Upper bound on one frame's payload.  A length prefix past this is a
#: corrupt or foreign stream (a real frame is at most one node's full
#: bank snapshot), so the reader fails loudly instead of trying to
#: allocate garbage.
MAX_FRAME_BYTES = 1 << 30

#: Every message the protocol speaks.  Requests and replies share the
#: registry: a worker services requests in order and a coordinator
#: validates each reply's type, so an unknown name on either side is a
#: protocol error, never a silent drop.
FRAME_TYPES = frozenset(
    {
        "init",
        "ok",
        "error",
        "deliver_batch",
        "drain",
        "drain_ack",
        "checkpoint_fence",
        "checkpoint_reply",
        "snapshot_request",
        "snapshot_reply",
        "adopt_state",
        "migrate_out",
        "migrate_reply",
        "absorb",
        "metrics_pull",
        "metrics_reply",
        "ping",
        "pong",
        "shutdown",
        "bye",
    }
)


def encode_frame(frame_type: str, **fields: Any) -> bytes:
    """One wire frame: length prefix + checksummed JSON payload.

    >>> frame = encode_frame("drain")
    >>> decode_frame_payload(frame[4:])["type"]
    'drain'
    """
    if frame_type not in FRAME_TYPES:
        known = ", ".join(sorted(FRAME_TYPES))
        raise ParameterError(
            f"unknown frame type {frame_type!r}; known: {known}"
        )
    body = {"v": FRAME_VERSION, "type": frame_type, **fields}
    payload = encode_checksummed_line(body, _FRAME_CHECKSUM_SEED).encode(
        "utf-8"
    )
    if len(payload) > MAX_FRAME_BYTES:
        raise StateError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_frame_payload(payload: bytes) -> dict[str, Any]:
    """Validate and decode one frame payload into its message body.

    Raises :class:`~repro.errors.StateError` on checksum mismatch (any
    bit flip), version mismatch, or an unknown message type.
    """
    try:
        text = payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise StateError(f"transport frame is not UTF-8: {exc}") from exc
    body = decode_checksummed_line(
        text, _FRAME_CHECKSUM_SEED, kind="transport frame"
    )
    if body.get("v") != FRAME_VERSION:
        raise StateError(
            f"unsupported transport frame version {body.get('v')!r} "
            f"(this side speaks {FRAME_VERSION})"
        )
    frame_type = body.get("type")
    if frame_type not in FRAME_TYPES:
        raise StateError(
            f"unknown transport frame type {frame_type!r}"
        )
    return body


def _read_exact(reader: BinaryIO, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, retrying partial reads.

    Returns ``None`` on clean EOF *before the first byte* (the peer
    closed between frames); raises :class:`~repro.errors.StateError`
    when the stream ends mid-read (a truncated frame).
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = reader.read(n - got)
        if not chunk:
            if got == 0:
                return None
            raise StateError(
                f"transport stream truncated: expected {n} bytes, "
                f"got {got} before EOF"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(reader: BinaryIO) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Partial reads are retried until the full frame arrives, so a
    fragmented pipe never desyncs the protocol; truncation inside a
    frame and corrupt length prefixes raise
    :class:`~repro.errors.StateError`.
    """
    prefix = _read_exact(reader, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise StateError(
            f"transport frame claims {length} bytes "
            f"(bound {MAX_FRAME_BYTES}): corrupt or foreign stream"
        )
    payload = _read_exact(reader, length)
    if payload is None:
        raise StateError(
            "transport stream truncated: EOF before frame payload"
        )
    return decode_frame_payload(payload)


def write_frame(writer: BinaryIO, frame_type: str, **fields: Any) -> None:
    """Encode and write one frame, flushing the stream."""
    writer.write(encode_frame(frame_type, **fields))
    writer.flush()


class FrameStream:
    """A bidirectional frame channel over a reader/writer byte pair.

    Wraps the coordinator side of a worker's pipes, or either side of a
    Unix-socket connection (:meth:`from_socket`).  ``recv`` returns
    ``None`` on clean EOF; :meth:`expect` additionally enforces the
    reply type and surfaces worker-reported ``error`` frames as
    :class:`~repro.errors.StateError`.
    """

    def __init__(self, reader: BinaryIO, writer: BinaryIO) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    def from_socket(cls, sock: socket.socket) -> "FrameStream":
        """A stream over one connected socket (owns two file objects)."""
        return cls(sock.makefile("rb"), sock.makefile("wb"))

    def send(self, frame_type: str, **fields: Any) -> None:
        """Write one frame (no reply expected by this call)."""
        write_frame(self._writer, frame_type, **fields)

    def recv(self) -> dict[str, Any] | None:
        """Read the next frame body; ``None`` on clean EOF."""
        return read_frame(self._reader)

    def expect(self, frame_type: str) -> dict[str, Any]:
        """Read one frame and require it to be ``frame_type``.

        An ``error`` frame raises with the peer's message; EOF and any
        other type are protocol errors.
        """
        body = self.recv()
        if body is None:
            raise StateError(
                f"transport peer closed while waiting for "
                f"{frame_type!r}"
            )
        if body["type"] == "error":
            raise StateError(
                f"transport peer reported: {body.get('message', '?')}"
            )
        if body["type"] != frame_type:
            raise StateError(
                f"transport protocol violation: expected "
                f"{frame_type!r}, got {body['type']!r}"
            )
        return body

    def request(
        self, frame_type: str, reply_type: str, **fields: Any
    ) -> dict[str, Any]:
        """One round-trip: send ``frame_type``, expect ``reply_type``."""
        self.send(frame_type, **fields)
        return self.expect(reply_type)

    def close(self) -> None:
        """Close both directions (idempotent, errors suppressed)."""
        for stream in (self._writer, self._reader):
            try:
                stream.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


def frame_summary(body: Mapping[str, Any]) -> str:
    """Compact one-line description of a frame body (logs and errors)."""
    fields = ", ".join(
        sorted(key for key in body if key not in ("v", "type"))
    )
    return f"{body.get('type', '?')}({fields})"
