"""Gossip-style partial aggregation: the decentralized read path.

The merge tree (:mod:`repro.cluster.aggregator`) answers queries by
pulling every node's bank to one place — the right shape for an
end-of-window report, the wrong one for "every node should be able to
answer locally".  This module adds the epidemic alternative: every node
keeps an epoch-stamped partial :class:`~repro.cluster.aggregator.
GlobalView` **digest**, and on simulation-driven gossip rounds the nodes
exchange and merge digests with seeded-random peers (push-pull,
configurable fanout).  After a round a node's *local* read covers more
of the cluster; once every entry has propagated, every node's read
equals the central merge-tree answer — bit for bit on ``exact``
templates.

Why gossip can be exact here
----------------------------
Naively merging two nodes' partial sums double-counts whatever both
already knew.  The digests avoid that the way anti-entropy protocols do:
a digest is a map *origin node id → versioned entry*, where an entry is
a self-contained snapshot of one origin's bank (cloned counters + exact
shadow counts) stamped with a monotone per-origin version.  Merging two
digests keeps, per origin, the entry with the larger version — never a
sum — so each origin's traffic is represented exactly once no matter how
many times its entry is forwarded.  A node's read then tree-merges the
per-origin entries (:func:`~repro.cluster.aggregator.tree_merge`, the
same fold the central aggregator uses), and Remark 2.4 makes that merge
distribution-exact.

Staleness is therefore *bounded and repairable*: a digest may lag the
live banks (by at most the traffic since each origin's last refresh —
:meth:`GossipNetwork.max_staleness` measures it), but it is never
*wrong* about what it covers, and push-pull rounds spread the newest
entries epidemically — every entry reaches every node in ``O(log n)``
rounds with high probability, which :meth:`GossipNetwork.converge`
counts and ``benchmarks/bench_cluster.py --scenario gossip`` records.

Determinism
-----------
Peer selection is driven by a dedicated RNG derived from
``(cluster seed, round index)`` — independent of the node counters'
streams and of wall clock — and nodes act in sorted-id order, so a
gossip run is a pure function of its config seed, exactly like every
other cluster feature.  Crash recovery composes the same way: a
recovered node's digest entry is rebuilt from its recovered bank (which
is checkpoint + WAL replay), its learned entries are volatile and lost,
and subsequent anti-entropy rounds repair the staleness.

>>> from repro.cluster.node import CounterTemplate, IngestNode
>>> from repro.stream.workload import KeyedEvent
>>> nodes = {
...     node_id: IngestNode(node_id, CounterTemplate("exact"), seed=node_id)
...     for node_id in (0, 1)
... }
>>> nodes[0].submit(KeyedEvent("a", 3))
>>> nodes[1].submit(KeyedEvent("a", 4))
>>> network = GossipNetwork(seed=7, fanout=1)
>>> for node_id in nodes:
...     network.add_node(node_id)
>>> rounds = network.converge(nodes)
>>> network.node_view(0, fanout=2).estimate("a")
7.0
>>> network.node_view(0, fanout=2).truth == {"a": 7}
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.cluster.aggregator import GlobalView, tree_merge
from repro.cluster.node import IngestNode
from repro.core.base import ApproximateCounter
from repro.core.merge import merge_all
from repro.errors import MergeError, ParameterError, StateError
from repro.rng.bitstream import BitBudgetedRandom
from repro.rng.splitmix import derive_seed

__all__ = [
    "AGGREGATION_MODES",
    "DigestEntry",
    "NodeDigest",
    "GossipNetwork",
]

#: Read-path registry for configs and CLI flags: the central merge tree
#: or the decentralized gossip digests on top of it.
AGGREGATION_MODES: tuple[str, ...] = ("tree", "gossip")

_GOSSIP_SEED_KEY = 0x676F7373  # "goss"


@dataclass(frozen=True)
class DigestEntry:
    """One origin's self-contained contribution, as some node knows it.

    Attributes
    ----------
    origin:
        The node id whose bank this entry snapshots.
    version:
        Monotone per-origin stamp assigned at capture; digest merges
        keep the larger version, never a sum, so forwarding an entry
        through many hops can never double-count.
    events:
        The origin's lifetime ``events_ingested`` at capture — what
        :meth:`GossipNetwork.max_staleness` measures lag against.
    epoch:
        Router topology epoch at capture (the "epoch-stamped" part of
        the digest: consumers can tell which topology generation made
        each entry).
    window:
        Retention window the origin was counting at capture.
    counters:
        Cloned per-key counters (never aliases of live bank state).
    truth:
        The origin's exact shadow counts (``None`` when its bank does
        not track truth).
    round:
        Lifetime gossip-round index at capture — the failure detector's
        staleness clock (:mod:`repro.cluster.membership`): an entry
        whose stamp stops advancing is evidence its origin stopped
        refreshing.
    """

    origin: int
    version: int
    events: int
    epoch: int
    window: int
    counters: Mapping[str, ApproximateCounter]
    truth: Mapping[str, int] | None
    round: int = 0

    @classmethod
    def capture(
        cls,
        node: IngestNode,
        version: int,
        epoch: int = 0,
        window: int = 0,
        round: int = 0,
    ) -> "DigestEntry":
        """Snapshot one node's flushed bank into a digest entry.

        The node is flushed first (so the entry covers every accepted
        event) and every counter is cloned via
        :func:`~repro.core.merge.merge_all` — cloning splits a child
        RNG stream off the counter's source without consuming it, so a
        capture never perturbs the node's future coin flips.
        """
        node.flush()
        counters = {
            key: merge_all([counter])
            for key, counter in sorted(node.bank.items())
        }
        truth = (
            {key: node.bank.truth(key) for key in counters}
            if node.bank.tracks_truth
            else None
        )
        return cls(
            origin=node.node_id,
            version=version,
            events=node.events_ingested,
            epoch=epoch,
            window=window,
            counters=counters,
            truth=truth,
            round=round,
        )


class NodeDigest:
    """One node's partial knowledge of the whole cluster.

    A mapping ``origin id → newest-known`` :class:`DigestEntry`.  The
    digest is volatile coordinator-side state (like the router's hot-key
    cursors): a crash wipes it, and recovery rebuilds the node's own
    entry from its recovered bank while anti-entropy rounds re-learn the
    rest.
    """

    def __init__(self, node_id: int) -> None:
        if node_id < 0:
            raise ParameterError(f"node_id must be >= 0, got {node_id}")
        self._node_id = node_id
        self._entries: dict[int, DigestEntry] = {}

    @property
    def node_id(self) -> int:
        """The node this digest belongs to."""
        return self._node_id

    @property
    def origins(self) -> tuple[int, ...]:
        """Origin ids this digest currently holds an entry for, sorted."""
        return tuple(sorted(self._entries))

    def entry(self, origin: int) -> DigestEntry | None:
        """The newest-known entry for ``origin`` (``None`` if unknown)."""
        return self._entries.get(origin)

    def merge_entry(self, entry: DigestEntry) -> bool:
        """Adopt ``entry`` if it is newer than what the digest holds.

        Returns whether the digest changed.  Entries are immutable
        snapshots, so adoption shares the object — no copying, exactly
        like forwarding a message.
        """
        known = self._entries.get(entry.origin)
        if known is not None and known.version >= entry.version:
            return False
        self._entries[entry.origin] = entry
        return True

    def merge_digest(self, other: "NodeDigest") -> int:
        """Adopt every newer entry from ``other``; returns adoptions."""
        return sum(
            self.merge_entry(entry)
            for _, entry in sorted(other._entries.items())
        )

    def drop_origin(self, origin: int) -> None:
        """Forget a retired origin (its keys migrated to survivors)."""
        self._entries.pop(origin, None)

    def clear(self) -> None:
        """Wipe the digest (a crash destroyed the node's volatile state)."""
        self._entries.clear()

    def view(self, fanout: int = 2) -> GlobalView:
        """This node's local read: tree-merge the per-origin entries.

        The fold is :func:`~repro.cluster.aggregator.tree_merge` over
        entries in sorted-origin order — the same shape the central
        aggregator uses — so on ``exact`` templates a complete digest's
        view equals :meth:`~repro.cluster.aggregator.MergeTreeAggregator.
        global_view` bit for bit.  Truth is reported only when every
        held entry carries it; the view's ``epoch`` is the newest entry
        epoch (0 for an empty digest).
        """
        per_key: dict[str, list[ApproximateCounter]] = {}
        entries = [self._entries[origin] for origin in self.origins]
        for entry in entries:
            for key, counter in entry.counters.items():
                per_key.setdefault(key, []).append(counter)
        tracked = all(entry.truth is not None for entry in entries)
        truth: dict[str, int] | None = {} if tracked else None
        merged: dict[str, ApproximateCounter] = {}
        max_rounds = 0
        for key in sorted(per_key):
            try:
                merged[key], rounds = tree_merge(per_key[key], fanout)
            except MergeError as exc:
                raise MergeError(
                    f"cannot aggregate key {key!r}: {exc}"
                ) from exc
            max_rounds = max(max_rounds, rounds)
            if truth is not None:
                truth[key] = sum(
                    entry.truth.get(key, 0)
                    for entry in entries
                    if entry.truth is not None
                )
        return GlobalView(
            counters=merged,
            truth=truth,
            merge_rounds=max_rounds,
            epoch=max((entry.epoch for entry in entries), default=0),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NodeDigest(node={self._node_id}, "
            f"origins={list(self.origins)})"
        )


def _randbelow(rng: BitBudgetedRandom, n: int) -> int:
    """Uniform integer in ``[0, n)`` by rejection sampling (no bias)."""
    if n <= 1:
        return 0
    bits = (n - 1).bit_length()
    while True:
        value = rng.getbits(bits)
        if value < n:
            return value


class GossipNetwork:
    """The coordinator's view of every node's digest, plus the rounds.

    The simulation owns one network per gossip-enabled cluster and
    drives it at exact stream positions (``ClusterConfig.gossip_every``)
    — gossip rounds are deterministic event-stream entries, fenced
    through the execution plan's drain handshake exactly like retention
    boundaries, so serial and parallel runs gossip at identical states.

    Parameters
    ----------
    seed:
        Cluster seed; peer selection derives from ``(seed, round)``
        only, independent of the counters' RNG streams.
    fanout:
        Peers each node exchanges with per round (push-pull: both sides
        adopt the other's newer entries).
    """

    def __init__(
        self, seed: int, fanout: int = 1, registry: Any = None
    ) -> None:
        if fanout < 1:
            raise ParameterError(f"fanout must be >= 1, got {fanout}")
        self._seed = seed
        self._fanout = fanout
        self._digests: dict[int, NodeDigest] = {}
        #: origin id -> latest issued version; never forgets retired
        #: ids, so a re-added id can never lose to a stale entry.
        self._versions: dict[int, int] = {}
        #: origin id -> round index of its latest refresh (0 = never);
        #: the detector's fallback clock for origins a digest has not
        #: learned an entry for yet.
        self._refresh_rounds: dict[int, int] = {}
        self._rounds = 0
        #: optional :class:`~repro.obs.MetricsRegistry` publishing round
        #: and digest-adoption counters (per-round cost, never per-event).
        self._registry = registry
        #: optional :class:`~repro.cluster.membership.FailureDetector`
        #: driven from every refreshing round (see :meth:`attach_detector`).
        self._detector: Any = None

    @property
    def fanout(self) -> int:
        """Peers contacted per node per round."""
        return self._fanout

    @property
    def rounds(self) -> int:
        """Lifetime push-pull rounds run (scheduled + convergence)."""
        return self._rounds

    @property
    def node_ids(self) -> tuple[int, ...]:
        """Participating node ids, sorted."""
        return tuple(sorted(self._digests))

    def digest(self, node_id: int) -> NodeDigest:
        """One node's digest (live reference, for white-box assertions)."""
        try:
            return self._digests[node_id]
        except KeyError:
            raise ParameterError(
                f"node {node_id} does not participate in gossip "
                f"(participants: {list(self.node_ids)})"
            ) from None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def attach_detector(self, detector: Any) -> None:
        """Drive a failure detector from every refreshing round.

        The detector (:class:`~repro.cluster.membership.FailureDetector`)
        gets a view for every current and future participant, a
        staleness assessment at the top of each refreshing round, and a
        piggybacked suspicion merge on every digest exchange.
        Anti-entropy rounds (``refresh=False``) carry frozen content
        whose stamps do not advance, so they run no detection.
        """
        self._detector = detector
        for node_id in self.node_ids:
            detector.add_node(node_id)

    def add_node(self, node_id: int) -> None:
        """Start gossiping with a (new) node; its digest starts empty."""
        if node_id in self._digests:
            raise ParameterError(
                f"node {node_id} already participates in gossip"
            )
        self._digests[node_id] = NodeDigest(node_id)
        self._versions.setdefault(node_id, 0)
        if self._detector is not None:
            self._detector.add_node(node_id)

    def remove_node(self, node_id: int) -> None:
        """Retire a node: drop its digest and purge its origin entries.

        The retiring node's keys migrated to the survivors before the
        removal (see :mod:`repro.cluster.rebalance`), so keeping its
        entry anywhere would double-count that traffic forever.  The
        simulation drives membership centrally (as it already does for
        the router and aggregator), so the purge is immediate; a fully
        decentralized deployment would use tombstoned entries instead.
        """
        self.digest(node_id)
        del self._digests[node_id]
        for digest in self._digests.values():
            digest.drop_origin(node_id)
        if self._detector is not None:
            self._detector.remove_node(node_id)

    def reset_node(self, node_id: int) -> None:
        """A crash wiped the node's volatile state, digest included."""
        self.digest(node_id).clear()
        if self._detector is not None:
            self._detector.reset_node(node_id)

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------
    def refresh(
        self,
        node: IngestNode,
        epoch: int = 0,
        window: int = 0,
    ) -> DigestEntry:
        """Re-capture one node's own entry at a bumped version.

        This is also the crash-recovery hook: after checkpoint restore +
        WAL replay rebuilt the bank, refreshing rebuilds the digest
        entry from it — the entry's version keeps counting up (the
        coordinator's version table survives the node's crash), so
        peers holding the pre-crash entry adopt the rebuilt one.
        """
        digest = self.digest(node.node_id)
        self._versions[node.node_id] = (
            self._versions.get(node.node_id, 0) + 1
        )
        self._refresh_rounds[node.node_id] = self._rounds
        entry = DigestEntry.capture(
            node,
            version=self._versions[node.node_id],
            epoch=epoch,
            window=window,
            round=self._rounds,
        )
        digest.merge_entry(entry)
        return entry

    def last_refresh_round(self, origin: int) -> int:
        """Round index of the origin's latest refresh (0 = never)."""
        return self._refresh_rounds.get(origin, 0)

    def run_round(
        self,
        nodes: Mapping[int, IngestNode],
        epoch: int = 0,
        window: int = 0,
        refresh: bool = True,
    ) -> int:
        """One push-pull round; returns the lifetime round index.

        Each participating node (sorted order) refreshes its own entry,
        then exchanges digests with ``fanout`` seeded-random peers —
        both sides adopt the other's newer entries.  Within a round
        later exchanges see earlier adoptions (epidemic relay), which
        is what makes convergence logarithmic.

        Participants are the ids in ``nodes``: a known node missing
        from the mapping is *dead* — its entry neither refreshes nor
        exchanges, so its round stamp goes stale at every peer, which
        is exactly what an attached failure detector feeds on.
        """
        self._rounds += 1
        rng = BitBudgetedRandom(
            derive_seed(self._seed, _GOSSIP_SEED_KEY, self._rounds)
        )
        participants = [nid for nid in self.node_ids if nid in nodes]
        detecting = refresh and self._detector is not None
        if refresh:
            for node_id in participants:
                self.refresh(nodes[node_id], epoch=epoch, window=window)
        if detecting:
            self._detector.begin_round(self, participants)
        adoptions = 0
        for node_id in participants:
            others = [peer for peer in participants if peer != node_id]
            for _ in range(min(self._fanout, len(others))):
                peer = others.pop(_randbelow(rng, len(others)))
                mine = self._digests[node_id]
                theirs = self._digests[peer]
                adoptions += mine.merge_digest(theirs)   # pull
                adoptions += theirs.merge_digest(mine)   # push
                if detecting:
                    self._detector.observe_exchange(self, node_id, peer)
        if self._registry is not None:
            self._registry.inc("gossip_rounds_total")
            self._registry.inc("gossip_digest_adoptions_total", adoptions)
        return self._rounds

    # ------------------------------------------------------------------
    # convergence and staleness
    # ------------------------------------------------------------------
    def converged(self) -> bool:
        """Whether every digest holds every origin's newest entry."""
        for digest in self._digests.values():
            for origin in self._digests:
                entry = digest.entry(origin)
                if entry is None or entry.version < self._versions[origin]:
                    return False
        return True

    def converge(
        self,
        nodes: Mapping[int, IngestNode],
        epoch: int = 0,
        window: int = 0,
        max_rounds: int | None = None,
    ) -> int:
        """Anti-entropy to a fixed point; returns the rounds it took.

        Every node's own entry is refreshed once (the final state),
        then exchange-only rounds run until every digest is complete.
        Termination is guaranteed: content is frozen, versions stop
        moving, and each round strictly grows somebody's digest with
        probability 1 — ``max_rounds`` (default ``4·n + 16``) is a
        loud backstop, not a tuning knob.
        """
        for node_id in self.node_ids:
            self.refresh(nodes[node_id], epoch=epoch, window=window)
        limit = (
            max_rounds
            if max_rounds is not None
            else 4 * len(self._digests) + 16
        )
        rounds = 0
        while not self.converged():
            if rounds >= limit:
                raise StateError(
                    f"gossip failed to converge within {limit} rounds "
                    f"(fanout {self._fanout}, "
                    f"{len(self._digests)} nodes)"
                )
            self.run_round(nodes, epoch=epoch, window=window, refresh=False)
            rounds += 1
        return rounds

    def node_view(self, node_id: int, fanout: int = 2) -> GlobalView:
        """One node's local read (see :meth:`NodeDigest.view`)."""
        return self.digest(node_id).view(fanout)

    def digest_staleness(
        self, node_id: int, nodes: Mapping[int, IngestNode]
    ) -> int:
        """Events one node's digest lags the live banks (pure read).

        The sum over live origins of the events the origin has ingested
        beyond what this node's digest entry covers (an unknown origin
        counts in full).  This is the honesty stamp a *replica* read
        reports (:class:`~repro.cluster.query.ClusterReader`): the
        answer may be missing at most this many delivered events.
        Reading it touches no node state — no flush, no RNG.
        """
        digest = self.digest(node_id)
        lag = 0
        for origin, node in sorted(nodes.items()):
            entry = digest.entry(origin)
            covered = entry.events if entry is not None else 0
            lag += max(node.events_ingested - covered, 0)
        return lag

    def read_stamp(self, node_id: int) -> tuple[tuple[int, ...], ...]:
        """Version/epoch stamp of one node's digest (pure read).

        Changes exactly when a replica read from this node could change:
        an entry is adopted at a higher version, an origin appears or is
        purged, or an entry carries a new topology epoch / retention
        window.  The query layer's per-template read cache keys its
        validity on this stamp.
        """
        digest = self.digest(node_id)
        stamp = []
        for origin in digest.origins:
            entry = digest.entry(origin)
            assert entry is not None  # origins only lists held entries
            stamp.append(
                (origin, entry.version, entry.epoch, entry.window)
            )
        return tuple(stamp)

    def max_staleness(self, nodes: Mapping[int, IngestNode]) -> int:
        """Worst per-node lag behind the live banks, in events.

        The max of :meth:`digest_staleness` over every participant.
        This is the "stale but bounded" guarantee made measurable — it
        can only grow with traffic since the last round, never with
        cluster age.
        """
        return max(
            (
                self.digest_staleness(node_id, nodes)
                for node_id in self.node_ids
            ),
            default=0,
        )

    def known_origins(self) -> dict[int, tuple[int, ...]]:
        """node id -> origins its digest covers (reporting helper)."""
        return {
            node_id: digest.origins
            for node_id, digest in sorted(self._digests.items())
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GossipNetwork(nodes={list(self.node_ids)}, "
            f"fanout={self._fanout}, rounds={self._rounds})"
        )
