"""Live node rebalancing: incremental key migration between ingest nodes.

When the topology changes (a node added under load, a node drained for
removal), every key whose home moved must carry its counter state to the
new owner.  Remark 2.4 of conf_pods_NelsonY22 makes this safe: merging
counters is distribution-exact, so *moving a counter is just a merge* —
drain the key from the old owner, ship its snapshot, merge it into the
new owner — and elasticity costs nothing in ε or δ.

The flow has three deterministic steps:

1. :func:`plan_rebalance` diffs every live bank against the router's
   post-change placement and emits a :class:`RebalancePlan` (a sorted
   list of :class:`KeyMove`\\ s).
2. The plan's moves are grouped into per-``(source, target)``
   :class:`MigrationBatch`\\ es — codec-serialized, checksummed JSON
   lines, exactly what would go over the wire between real machines.
3. :func:`execute_rebalance` drains each source
   (:meth:`~repro.cluster.node.IngestNode.drain`), round-trips every
   batch through its encoded form, and merges the restored counters
   into their new owners (:meth:`~repro.cluster.node.IngestNode.absorb`).
   Restored counters get seeds derived from ``(seed, epoch, key)`` so
   migration is replayable and migrated replicas never share future
   coin flips with anything else.

Hot-key slices are migrated like any other key (their merged-at-home
counter is still exact by Remark 2.4); future hot traffic re-splits
round-robin over the new topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.analytics.counter_bank import stable_key_hash
from repro.cluster.node import IngestNode
from repro.core.base import ApproximateCounter, CounterSnapshot
from repro.core.codec import (
    decode_checksummed_line,
    decode_snapshot,
    encode_checksummed_line,
    encode_snapshot,
)
from repro.core.factory import COUNTER_TYPES
from repro.errors import ParameterError, StateError
from repro.rng.splitmix import derive_seed

__all__ = [
    "KeyMove",
    "RebalancePlan",
    "MigrationBatch",
    "RebalanceReport",
    "absorb_batch",
    "migrated_counter",
    "plan_rebalance",
    "execute_rebalance",
]

_BATCH_VERSION = 1
_BATCH_CHECKSUM_SEED = 0xBA7C4C4EC4B2AE5D
_MIGRATE_SEED_KEY = 0x6D696772  # "migr"


@dataclass(frozen=True, slots=True)
class KeyMove:
    """One key changing owners: drain from ``source``, merge into ``target``."""

    key: str
    source: int
    target: int

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ParameterError(
                f"key {self.key!r} move is a no-op (node {self.source})"
            )


@dataclass(frozen=True)
class RebalancePlan:
    """The full diff one topology change implies.

    Attributes
    ----------
    epoch:
        Router epoch the plan was computed for, stamped into every
        shipped batch so wire records are auditable.  Executing a plan
        is the caller's responsibility to sequence — the simulation
        always plans and executes within one topology change.
    moves:
        Every key changing owners, sorted by ``(source, target, key)``.
    """

    epoch: int
    moves: tuple[KeyMove, ...]

    @property
    def n_moves(self) -> int:
        """Number of keys changing owners."""
        return len(self.moves)

    def grouped(self) -> dict[tuple[int, int], list[str]]:
        """Moves grouped into ``(source, target) -> sorted keys`` batches."""
        groups: dict[tuple[int, int], list[str]] = {}
        for move in self.moves:
            groups.setdefault((move.source, move.target), []).append(
                move.key
            )
        return groups


def plan_rebalance(
    nodes: Mapping[int, IngestNode],
    owner_of: Callable[[str], int],
    epoch: int = 0,
) -> RebalancePlan:
    """Diff live banks against a placement function.

    Every node is flushed first (buffered increments must be in the bank
    to migrate), then each key whose ``owner_of(key)`` is a *different
    live node* becomes a :class:`KeyMove`.  Keys already home stay put —
    with a consistent-hash-ring router only ``~1/n`` of keys move.

    Parameters
    ----------
    nodes:
        Live nodes by id (the post-change membership).
    owner_of:
        The new placement, typically
        :meth:`~repro.cluster.router.ClusterRouter.home_node`.
    epoch:
        Router epoch to stamp into the plan.

    Returns
    -------
    RebalancePlan
        Deterministically ordered (nodes, then keys, sorted).

    >>> from repro.cluster.node import CounterTemplate
    >>> from repro.stream.workload import KeyedEvent
    >>> a = IngestNode(0, CounterTemplate("exact"), seed=1)
    >>> a.submit_all([KeyedEvent("x", 2), KeyedEvent("y", 1)])
    3
    >>> plan = plan_rebalance({0: a, 1: IngestNode(1,
    ...     CounterTemplate("exact"), seed=2)}, owner_of=lambda key: 1)
    >>> [(m.key, m.source, m.target) for m in plan.moves]
    [('x', 0, 1), ('y', 0, 1)]
    """
    moves: list[KeyMove] = []
    for node_id in sorted(nodes):
        node = nodes[node_id]
        node.flush()
        for key in sorted(node.bank.keys()):
            target = owner_of(key)
            if target not in nodes:
                raise ParameterError(
                    f"placement sends {key!r} to unknown node {target}"
                )
            if target != node_id:
                moves.append(KeyMove(key, node_id, target))
    moves.sort(key=lambda m: (m.source, m.target, m.key))
    return RebalancePlan(epoch=epoch, moves=tuple(moves))


@dataclass(frozen=True)
class MigrationBatch:
    """Everything one source ships to one target for one rebalance.

    The wire format mirrors :class:`~repro.cluster.checkpoint.
    BankCheckpoint`: per-key counter snapshots (via
    :mod:`repro.core.codec`), exact shadow counts when tracked, and a
    checksummed single-line JSON encoding, so a truncated or corrupted
    batch fails loudly instead of silently losing keys in flight.
    """

    source: int
    target: int
    epoch: int
    snapshots: Mapping[str, CounterSnapshot]
    truth: Mapping[str, int] | None = None
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.snapshots)

    def encode(self) -> str:
        """Serialize to a single checksummed JSON line."""
        body = {
            "v": _BATCH_VERSION,
            "source": self.source,
            "target": self.target,
            "epoch": self.epoch,
            "counters": {
                key: encode_snapshot(snap)
                for key, snap in sorted(self.snapshots.items())
            },
            "truth": dict(self.truth) if self.truth is not None else None,
            "meta": dict(self.meta),
        }
        return encode_checksummed_line(body, _BATCH_CHECKSUM_SEED)

    @classmethod
    def decode(cls, line: str) -> "MigrationBatch":
        """Parse a line produced by :meth:`encode`.

        Raises :class:`~repro.errors.StateError` on malformed input,
        version mismatch, or checksum mismatch (including corruption in
        any embedded counter record).
        """
        body = decode_checksummed_line(
            line, _BATCH_CHECKSUM_SEED, kind="migration batch"
        )
        if body.get("v") != _BATCH_VERSION:
            raise StateError(
                f"unsupported migration batch version {body.get('v')!r}"
            )
        try:
            truth = body["truth"]
            return cls(
                source=int(body["source"]),
                target=int(body["target"]),
                epoch=int(body["epoch"]),
                snapshots={
                    key: decode_snapshot(record)
                    for key, record in body["counters"].items()
                },
                truth=(
                    {k: int(v) for k, v in truth.items()}
                    if truth is not None
                    else None
                ),
                meta=dict(body.get("meta", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StateError(f"malformed migration batch: {exc}") from exc


@dataclass(frozen=True, slots=True)
class RebalanceReport:
    """What one executed rebalance did (for metrics and tables)."""

    epoch: int
    keys_moved: int
    n_batches: int
    bytes_shipped: int


def _restore(snapshot: CounterSnapshot, seed: int) -> ApproximateCounter:
    """Build a live counter from a migrated snapshot on a fresh stream."""
    cls = COUNTER_TYPES[snapshot.algorithm]
    try:
        counter = cls(**snapshot.params, seed=seed)
        counter.restore(snapshot)
    except (TypeError, ValueError) as exc:
        raise StateError(
            f"migrated snapshot incompatible with {cls.__name__}: {exc}"
        ) from exc
    return counter


def migrated_counter(
    snapshot: CounterSnapshot,
    key: str,
    seed: int = 0,
    epoch: int = 0,
) -> ApproximateCounter:
    """Restore one migrated counter on its migration-derived stream.

    The seed derives from ``(seed, epoch, key)`` — the same convention
    :func:`execute_rebalance` uses — so any replayer of a
    :class:`MigrationBatch` line (the in-process rebalance, a worker
    process absorbing an ``absorb`` frame, or crash recovery replaying
    the migration journal) rebuilds bit-identical counters.
    """
    return _restore(
        snapshot,
        seed=derive_seed(
            seed, _MIGRATE_SEED_KEY, epoch, stable_key_hash(key)
        ),
    )


def absorb_batch(
    batch: MigrationBatch, destination: IngestNode, seed: int = 0
) -> int:
    """Merge one decoded batch into its destination node; returns keys.

    The inner half of :func:`execute_rebalance`, shared with the worker
    process (``absorb`` frames) and journal-replay recovery so all
    three absorb identically.
    """
    for key in sorted(batch.snapshots):
        counter = migrated_counter(
            batch.snapshots[key], key, seed=seed, epoch=batch.epoch
        )
        destination.absorb(
            key,
            counter,
            truth=(
                batch.truth[key] if batch.truth is not None else None
            ),
        )
    return len(batch)


def execute_rebalance(
    plan: RebalancePlan,
    nodes: Mapping[int, IngestNode],
    seed: int = 0,
    on_batch: Callable[[str], None] | None = None,
) -> RebalanceReport:
    """Drain, ship, and merge every move in ``plan``.

    Batches are processed in sorted ``(source, target)`` order; each is
    encoded to its wire line and decoded back before merging, so every
    rebalance exercises the exact bytes a distributed deployment would
    ship.  Restored counters take seeds derived from
    ``(seed, epoch, key)``; merging into the new owner is
    distribution-exact (Remark 2.4), so ground truth and accuracy are
    both preserved — the invariant ``tests/cluster/test_rebalance.py``
    pins down.

    ``on_batch`` observes each encoded wire line *after the source
    drain and before the destination absorb* — the simulation journals
    the line durably there (so a death mid-migration is recoverable)
    and the process plan ships it to the worker fleet.

    Returns
    -------
    RebalanceReport
        Keys moved, batches shipped, and wire bytes.
    """
    total_bytes = 0
    keys_moved = 0
    n_batches = 0
    groups = plan.grouped()
    for source, target in sorted(groups):
        if source not in nodes or target not in nodes:
            raise ParameterError(
                f"plan references unknown node in batch "
                f"{source}->{target}"
            )
        records = nodes[source].drain(groups[(source, target)])
        if not records:
            continue
        tracked = all(truth is not None for _, _, truth in records)
        batch = MigrationBatch(
            source=source,
            target=target,
            epoch=plan.epoch,
            snapshots={key: snap for key, snap, _ in records},
            truth=(
                {key: truth for key, _, truth in records}
                if tracked
                else None
            ),
        )
        line = batch.encode()
        n_batches += 1
        total_bytes += len(line.encode("utf-8"))
        if on_batch is not None:
            on_batch(line)
        received = MigrationBatch.decode(line)
        keys_moved += absorb_batch(received, nodes[target], seed=seed)
    return RebalanceReport(
        epoch=plan.epoch,
        keys_moved=keys_moved,
        n_batches=n_batches,
        bytes_shipped=total_bytes,
    )
