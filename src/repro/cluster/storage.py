"""Durable checkpoint stores and the segmented write-ahead log.

Before this layer existed, the simulation's durability bookkeeping was a
pair of Python dicts: one holding the last :class:`~repro.cluster.
checkpoint.BankCheckpoint` line per node, one holding the *entire* list
of events delivered since that checkpoint.  With ``checkpoint_every=None``
the second dict retained the whole stream — an unbounded memory leak
dressed up as a durable log.  This module replaces both dicts with a
pluggable abstraction:

* :class:`CheckpointStore` — where the latest checkpoint line per node
  lives, plus the cluster *manifest* (topology stamp, incarnations,
  config echo) that recovery needs to rebuild a simulation;
* :class:`WriteAheadLog` — the per-node durable log of events delivered
  since the node's last checkpoint fence.

Three concrete backends ship:

* :class:`MemoryStore` — the historical in-process behavior, extracted.
  Nothing touches disk; ``load`` (cold recovery) is impossible.
* :class:`FileStore` — one directory per cluster.  Checkpoint lines and
  the manifest are written atomically (write to a temp file, then
  ``os.replace``) so a crash mid-write can never leave a torn record,
  and every line is checksummed so corruption fails loudly with
  :class:`~repro.errors.StateError`.  A simulation persisted this way
  can be re-opened from disk with
  :func:`~repro.cluster.simulation.recover_cluster`.
* :class:`SegmentedLog` — the write-ahead log used by both stores.  It
  rolls fixed-size segments and truncates *every* segment at a node's
  checkpoint fence; when a segment fills before a fence arrives, the
  log reports :meth:`~SegmentedLog.needs_fence` and the simulation takes
  a forced checkpoint.  Replay cost is therefore proportional to
  ``min(checkpoint_every, segment size)`` — never to stream length —
  which fixes the unbounded-log leak by construction.

Store layout of a :class:`FileStore` directory::

    <dir>/manifest.json            # checksummed topology + config stamp
    <dir>/checkpoints/node-<id>.ckpt   # latest checkpoint line per node
    <dir>/wal/node-<id>/seg-<n>.log    # one delivered event per line

Determinism
-----------
The storage backend must never change *what* a simulation computes, only
where its durable state lives: the same config seed and event stream
produce bit-identical results on :class:`MemoryStore` and
:class:`FileStore` (a tier-1 invariant).  Both therefore share the same
in-memory :class:`SegmentedLog` segment/fence logic; the file backend
only adds persistence side effects.
"""

from __future__ import annotations

import abc
import json
import os
import pathlib
import shutil
import time
from typing import IO, Any, Mapping

from repro.core.codec import (
    decode_checksummed_line,
    encode_checksummed_line,
)
from repro.errors import ParameterError, StateError
from repro.stream.workload import KeyedEvent

__all__ = [
    "WriteAheadLog",
    "SegmentedLog",
    "CheckpointStore",
    "MemoryStore",
    "FileStore",
    "STORAGE_BACKENDS",
    "make_store",
    "encode_event",
    "decode_event",
]

_MANIFEST_VERSION = 1
_MANIFEST_CHECKSUM_SEED = 0x5AFE_C0DE_D15C_0001


def encode_event(event: KeyedEvent) -> str:
    """One WAL line for one delivered event.

    >>> encode_event(KeyedEvent("page-7", 3))
    '["page-7",3]'
    """
    return json.dumps([event.key, event.count], separators=(",", ":"))


def decode_event(line: str) -> KeyedEvent:
    """Inverse of :func:`encode_event`; loud on corruption.

    >>> decode_event('["page-7",3]')
    KeyedEvent(key='page-7', count=3)
    >>> decode_event('["torn')
    Traceback (most recent call last):
        ...
    repro.errors.StateError: corrupt WAL record '["torn'
    """
    try:
        key, count = json.loads(line)
        return KeyedEvent(str(key), int(count))
    except (json.JSONDecodeError, TypeError, ValueError) as exc:
        raise StateError(f"corrupt WAL record {line!r}") from exc


# ----------------------------------------------------------------------
# write-ahead log
# ----------------------------------------------------------------------
class WriteAheadLog(abc.ABC):
    """Per-node durable log of events delivered since the last fence.

    The simulation appends every routed event before handing it to the
    node, replays the log during crash recovery, and *fences* the log
    (truncating it) whenever the node checkpoints — so the log always
    holds exactly the events a recovery must redeliver on top of the
    last checkpoint.

    Threading contract (the parallel ingest pipeline relies on it):
    :meth:`append` for a given ``node_id`` is called only from the one
    worker thread currently confined to that node, and appends for
    distinct nodes touch disjoint per-node state — so concurrent
    appends to *different* nodes need no locking.  Every other
    operation (``register`` / ``fence`` / ``replay`` / ``drop`` /
    ``sequence`` / ``truncate_through``) runs on the coordinator
    thread after a drain handshake for the node it operates on — no
    append in flight *for that node*; appends to **other** nodes may
    still be running (a per-node checkpoint drains only its node).
    Implementations must therefore keep cross-node state out of these
    operations: everything they touch has to be partitioned by node
    id, as the shipped :class:`SegmentedLog` backends are.  See
    :mod:`repro.cluster.pipeline`.
    """

    @abc.abstractmethod
    def register(self, node_id: int) -> None:
        """Start tracking ``node_id`` (idempotent)."""

    @abc.abstractmethod
    def append(self, node_id: int, event: KeyedEvent) -> None:
        """Record one delivered event."""

    @abc.abstractmethod
    def replay(self, node_id: int) -> list[KeyedEvent]:
        """Events delivered since the node's last fence, in order."""

    @abc.abstractmethod
    def fence(self, node_id: int) -> None:
        """Checkpoint taken: truncate everything logged so far."""

    @abc.abstractmethod
    def drop(self, node_id: int) -> None:
        """Stop tracking a retired node and discard its log."""

    @abc.abstractmethod
    def retained_events(self, node_id: int) -> int:
        """Number of events currently retained for ``node_id``."""

    @abc.abstractmethod
    def sequence(self, node_id: int) -> int:
        """Lifetime append count — the fence position a checkpoint covers.

        A checkpoint taken *now* covers every event appended so far, so
        recording ``sequence(node_id)`` in the checkpoint lets recovery
        discard any log entry the checkpoint already includes (see
        :meth:`truncate_through`), even if the process died between
        writing the checkpoint and fencing the log.
        """

    @abc.abstractmethod
    def truncate_through(self, node_id: int, seq: int) -> None:
        """Drop retained events with sequence below ``seq``.

        The recovery-side half of the torn-fence protocol: replaying on
        top of a checkpoint that records fence position ``seq`` must
        skip events the checkpoint already covers, or they would count
        twice.
        """

    def needs_fence(self, node_id: int) -> bool:
        """Whether a filled segment is waiting on a checkpoint fence."""
        return False

    def storage_bytes(self) -> int:
        """Bytes of log state currently retained (all nodes)."""
        return 0


class SegmentedLog(WriteAheadLog):
    """A WAL that rolls fixed-size segments and truncates at fences.

    ``segment_events=None`` reproduces the historical single unbounded
    segment (the log only ever shrinks at a checkpoint fence).  With a
    limit, the active segment seals once it holds ``segment_events``
    events and :meth:`needs_fence` turns true — the simulation reacts by
    taking a forced checkpoint, whose fence truncates every segment.
    Retained log length is therefore bounded by the segment size even
    when periodic checkpointing is disabled.

    >>> log = SegmentedLog(segment_events=2)
    >>> log.register(0)
    >>> for key in ("a", "b", "c"):
    ...     log.append(0, KeyedEvent(key))
    >>> log.retained_events(0)
    3
    >>> log.needs_fence(0)  # segment ['a', 'b'] sealed, awaiting fence
    True
    >>> [event.key for event in log.replay(0)]
    ['a', 'b', 'c']
    >>> log.fence(0)  # checkpoint taken: all segments truncate
    >>> log.retained_events(0), log.needs_fence(0)
    (0, False)
    """

    def __init__(self, segment_events: int | None = None) -> None:
        if segment_events is not None and segment_events < 1:
            raise ParameterError(
                f"segment_events must be >= 1 or None, got {segment_events}"
            )
        self._segment_events = segment_events
        #: Telemetry facade (``repro.obs.Telemetry``) or None; attached
        #: by the owning store, never consulted for any WAL decision.
        self._telemetry: Any = None
        #: node id -> list of segments; the last one is the active segment.
        self._segments: dict[int, list[list[KeyedEvent]]] = {}
        #: node id -> lifetime append count (next event's sequence).
        self._next_seq: dict[int, int] = {}
        #: node id -> sequence of the first retained event.
        self._base_seq: dict[int, int] = {}

    @property
    def segment_events(self) -> int | None:
        """Events per segment (``None`` = one unbounded segment)."""
        return self._segment_events

    def attach_telemetry(self, telemetry: Any) -> None:
        """Point WAL instrumentation at a telemetry facade.

        Purely observational: the log's segment/fence decisions never
        read from it, so attaching (or not) cannot change a run.
        """
        self._telemetry = telemetry

    def _node_segments(self, node_id: int) -> list[list[KeyedEvent]]:
        try:
            return self._segments[node_id]
        except KeyError:
            raise StateError(
                f"node {node_id} is not registered with the WAL"
            ) from None

    def register(self, node_id: int) -> None:
        if node_id in self._segments:
            return
        self._segments[node_id] = [[]]
        self._next_seq[node_id] = 0
        self._base_seq[node_id] = 0
        self._persist_register(node_id)

    def append(self, node_id: int, event: KeyedEvent) -> None:
        segments = self._node_segments(node_id)
        segments[-1].append(event)
        self._next_seq[node_id] += 1
        self._persist_append(node_id, event)
        if (
            self._segment_events is not None
            and len(segments[-1]) >= self._segment_events
        ):
            segments.append([])  # seal the active segment, roll a new one
            self._persist_roll(node_id)

    def replay(self, node_id: int) -> list[KeyedEvent]:
        return [
            event
            for segment in self._node_segments(node_id)
            for event in segment
        ]

    def fence(self, node_id: int) -> None:
        self._node_segments(node_id)[:] = [[]]
        self._base_seq[node_id] = self._next_seq[node_id]
        self._persist_fence(node_id)

    def drop(self, node_id: int) -> None:
        self._node_segments(node_id)
        del self._segments[node_id]
        del self._next_seq[node_id]
        del self._base_seq[node_id]
        self._persist_drop(node_id)

    def retained_events(self, node_id: int) -> int:
        return sum(len(segment) for segment in self._node_segments(node_id))

    def sequence(self, node_id: int) -> int:
        self._node_segments(node_id)
        return self._next_seq[node_id]

    def truncate_through(self, node_id: int, seq: int) -> None:
        segments = self._node_segments(node_id)
        if seq > self._next_seq[node_id]:
            # The sequence bookkeeping was reconstructed from segment
            # files that a torn fence partially deleted, so it lags the
            # checkpoint — which is authoritative: everything retained
            # is covered by it.  Re-fence at the checkpoint's sequence
            # so future appends (and their persisted segment names)
            # continue from the true position instead of recycling
            # covered sequence numbers, which a later recovery would
            # truncate away as if they were old events.
            segments[:] = [[]]
            self._next_seq[node_id] = seq
            self._base_seq[node_id] = seq
            self._persist_fence(node_id)
            return
        drop = seq - self._base_seq[node_id]
        if drop <= 0:
            return
        # Trim whole segments first, then the head of the survivor.
        # Disk segments are left alone: a later fence deletes them, and
        # a re-load re-applies this same truncation from the checkpoint.
        for index, segment in enumerate(segments):
            if drop < len(segment):
                segments[index] = segment[drop:]
                del segments[:index]
                break
            drop -= len(segment)
        else:
            segments[:] = [[]]
        self._base_seq[node_id] = seq

    def needs_fence(self, node_id: int) -> bool:
        """True once the retained log has reached a full segment's worth.

        Measured in *events retained*, not segments: a partial segment
        re-loaded from disk after a restart must not trigger a spurious
        fence checkpoint, so merely re-opening a store never rewrites
        its state.
        """
        if self._segment_events is None:
            return False
        return self.retained_events(node_id) >= self._segment_events

    def storage_bytes(self) -> int:
        """Retained log size, measured as its serialized line bytes."""
        return sum(
            len(encode_event(event)) + 1  # trailing newline
            for segments in self._segments.values()
            for segment in segments
            for event in segment
        )

    # Persistence hooks — no-ops for the in-memory log; the file-backed
    # subclass overrides them.  Segment/fence *logic* stays identical
    # across backends, which is what keeps runs bit-reproducible no
    # matter where the log lives.
    def _persist_register(self, node_id: int) -> None:
        pass

    def _persist_append(self, node_id: int, event: KeyedEvent) -> None:
        pass

    def _persist_roll(self, node_id: int) -> None:
        pass

    def _persist_fence(self, node_id: int) -> None:
        pass

    def _persist_drop(self, node_id: int) -> None:
        pass

    def close(self) -> None:
        """Release any backend resources (no-op in memory)."""


class _FileSegmentedLog(SegmentedLog):
    """File-backed :class:`SegmentedLog`: one directory per node.

    Each segment is one append-only file of :func:`encode_event` lines,
    flushed per append so a recovery process sees every delivered event.
    A fence deletes all of the node's segment files.  A segment file is
    named by the *sequence number* of its first event (monotone over the
    node's lifetime), so a re-opened log can reconstruct every retained
    event's sequence — which is what lets recovery skip entries an
    already-persisted checkpoint covers (the torn-fence protocol).

    ``fsync_every`` adds *group commit*: every ``fsync_every``-th append
    to a node's log calls ``os.fsync``, pushing the lines past the OS
    page cache to stable storage (a sealed or closed segment always
    syncs its tail).  Per-append flushes already survive a *process*
    death; group commit bounds what a *machine* death can lose to the
    last ``fsync_every - 1`` appends per node.  The fsync blocks with
    the GIL released, which is exactly the stall the parallel ingest
    pipeline overlaps across node workers — see
    :mod:`repro.cluster.pipeline`.
    """

    def __init__(
        self,
        directory: pathlib.Path,
        segment_events: int | None = None,
        fsync_every: int | None = None,
    ) -> None:
        super().__init__(segment_events)
        if fsync_every is not None and fsync_every < 1:
            raise ParameterError(
                f"fsync_every must be >= 1 or None, got {fsync_every}"
            )
        self._dir = pathlib.Path(directory)
        self._fsync_every = fsync_every
        #: node id -> appends since that node's last fsync.
        self._unsynced: dict[int, int] = {}
        self._handles: dict[int, IO[str]] = {}

    def _node_dir(self, node_id: int) -> pathlib.Path:
        return self._dir / f"node-{node_id}"

    def _record_fsync(
        self, node_id: int, seconds: float | None
    ) -> None:
        """Publish one fsync into the attached telemetry (if any).

        ``seconds`` is ``None`` when the wall-clock layer is disabled —
        the count is deterministic (one per physical fsync) and always
        recorded; durations and traces are telemetry-gated extras.
        """
        telemetry = self._telemetry
        if telemetry is None:
            return
        telemetry.registry.inc("wal_fsyncs_total", node=node_id)
        if seconds is not None:
            telemetry.registry.observe("wal_fsync_seconds", seconds)
            telemetry.stage_timer().add("fsync", seconds)
        if telemetry.trace_active:
            telemetry.trace("wal_fsync", node=node_id)

    def _sync_handle(self, node_id: int, handle: IO[str]) -> None:
        """Flush a node's pending group commit (sealing or closing)."""
        if self._unsynced.pop(node_id, 0):
            handle.flush()
            telemetry = self._telemetry
            if telemetry is not None and telemetry.enabled:
                start = time.perf_counter()
                os.fsync(handle.fileno())
                self._record_fsync(
                    node_id, time.perf_counter() - start
                )
            else:
                os.fsync(handle.fileno())
                self._record_fsync(node_id, None)

    def _open_segment(self, node_id: int) -> None:
        start_seq = self._next_seq.get(node_id, 0)
        node_dir = self._node_dir(node_id)
        node_dir.mkdir(parents=True, exist_ok=True)
        old = self._handles.pop(node_id, None)
        if old is not None:
            self._sync_handle(node_id, old)
            old.close()
        self._handles[node_id] = open(
            node_dir / f"seg-{start_seq:012d}.log", "a", encoding="utf-8"
        )

    def _persist_register(self, node_id: int) -> None:
        self._open_segment(node_id)

    def _persist_append(self, node_id: int, event: KeyedEvent) -> None:
        handle = self._handles[node_id]
        handle.write(encode_event(event) + "\n")
        handle.flush()
        if self._fsync_every is not None:
            unsynced = self._unsynced.get(node_id, 0) + 1
            if unsynced >= self._fsync_every:
                telemetry = self._telemetry
                if telemetry is not None and telemetry.enabled:
                    start = time.perf_counter()
                    os.fsync(handle.fileno())
                    self._record_fsync(
                        node_id, time.perf_counter() - start
                    )
                else:
                    os.fsync(handle.fileno())
                    self._record_fsync(node_id, None)
                unsynced = 0
            self._unsynced[node_id] = unsynced

    def _persist_roll(self, node_id: int) -> None:
        self._open_segment(node_id)

    def _persist_fence(self, node_id: int) -> None:
        handle = self._handles.pop(node_id, None)
        self._unsynced.pop(node_id, None)  # files are about to be deleted
        if handle is not None:
            handle.close()
        node_dir = self._node_dir(node_id)
        # Delete oldest-first: a crash mid-loop then leaves a contiguous
        # *suffix* of the chain, which load() accepts and the checkpoint
        # just saved fully covers — never a mid-chain gap it must refuse.
        for path in sorted(node_dir.glob("seg-*.log")):
            path.unlink()
        self._open_segment(node_id)

    def _persist_drop(self, node_id: int) -> None:
        handle = self._handles.pop(node_id, None)
        self._unsynced.pop(node_id, None)
        if handle is not None:
            handle.close()
        shutil.rmtree(self._node_dir(node_id), ignore_errors=True)

    def load(self, node_id: int) -> None:
        """Rebuild the in-memory log for one node from its segment files.

        Loaded events stay attributed to their on-disk segments; new
        appends go to a fresh segment file, so the disk always holds the
        full retained log.  Sequence bookkeeping is reconstructed from
        the file names (start sequence) plus line counts.  Raises
        :class:`~repro.errors.StateError` on a corrupt record.
        """
        node_dir = self._node_dir(node_id)
        segments: list[list[KeyedEvent]] = []
        base_seq = 0
        next_seq = 0
        expected_start: int | None = None
        for index, path in enumerate(sorted(node_dir.glob("seg-*.log"))):
            try:
                start_seq = int(path.stem.split("-", 1)[1])
            except ValueError as exc:
                raise StateError(
                    f"unrecognized WAL segment file {path.name!r}"
                ) from exc
            if expected_start is not None and start_seq != expected_start:
                # A segment's successor must start where it ended; a gap
                # means log records were lost (a deleted segment, or a
                # predecessor that lost tail lines) and a count-based
                # replay would silently misalign.
                raise StateError(
                    f"WAL gap for node {node_id}: {path.name} starts at "
                    f"sequence {start_seq}, expected {expected_start} "
                    "(lost log records)"
                )
            lines = path.read_text(encoding="utf-8").splitlines()
            if index == 0:
                base_seq = start_seq
            segments.append([decode_event(line) for line in lines])
            next_seq = start_seq + len(lines)
            expected_start = next_seq
        self._segments[node_id] = segments if segments else [[]]
        self._base_seq[node_id] = base_seq
        self._next_seq[node_id] = next_seq
        if segments:
            self._segments[node_id].append([])  # fresh active segment
        self._open_segment(node_id)

    def storage_bytes(self) -> int:
        """Bytes of segment files currently on disk (all nodes)."""
        return sum(
            path.stat().st_size
            for path in self._dir.glob("node-*/seg-*.log")
        )

    def close(self) -> None:
        for node_id, handle in self._handles.items():
            self._sync_handle(node_id, handle)
            handle.close()
        self._handles.clear()


# ----------------------------------------------------------------------
# checkpoint stores
# ----------------------------------------------------------------------
class CheckpointStore(abc.ABC):
    """Latest-checkpoint-per-node storage plus the cluster manifest.

    A store owns a paired :class:`WriteAheadLog` (:attr:`wal`): the two
    together are the whole durability contract — recovery of any node is
    ``latest(node_id)`` + ``wal.replay(node_id)``, and nothing else.
    """

    @property
    @abc.abstractmethod
    def wal(self) -> WriteAheadLog:
        """The write-ahead log paired with this store."""

    @abc.abstractmethod
    def initialize(self) -> None:
        """Prepare for a *fresh* cluster, discarding any prior state."""

    @abc.abstractmethod
    def load(self) -> dict[str, Any]:
        """Open existing durable state; returns the manifest.

        Raises :class:`~repro.errors.StateError` when there is nothing
        to recover or the persisted state is corrupt.
        """

    @abc.abstractmethod
    def register(self, node_id: int) -> None:
        """Start tracking a node (and register it with the WAL)."""

    @abc.abstractmethod
    def save(self, node_id: int, line: str) -> None:
        """Durably record ``line`` as the node's latest checkpoint."""

    @abc.abstractmethod
    def latest(self, node_id: int) -> str | None:
        """The node's latest checkpoint line (``None`` if never taken)."""

    @abc.abstractmethod
    def drop(self, node_id: int) -> None:
        """Forget a retired node's checkpoint and WAL state."""

    @abc.abstractmethod
    def write_manifest(self, payload: Mapping[str, Any]) -> None:
        """Durably record the cluster manifest (topology, incarnations)."""

    @abc.abstractmethod
    def manifest(self) -> dict[str, Any] | None:
        """The last written/loaded manifest (``None`` before the first)."""

    @abc.abstractmethod
    def journal_migration(self, line: str) -> None:
        """Durably append one in-flight migration batch line.

        Written *before* the batch is absorbed anywhere: between the
        source drain and the first absorb a migrated counter exists in
        no bank, no checkpoint, and no WAL — the journal is the only
        durable copy, which is what lets recovery survive a death
        mid-migration (replay the journal) instead of refusing via the
        manifest's ``mid_migration`` flag.
        """

    @abc.abstractmethod
    def pending_migrations(self) -> list[str]:
        """Journaled batch lines not yet cleared, in journal order."""

    @abc.abstractmethod
    def clear_migration_journal(self) -> None:
        """Discard the journal — the migration's fences are durable."""

    def attach_telemetry(self, telemetry: Any) -> None:
        """Forward a telemetry facade to the paired WAL.

        Backends that rebuild their WAL (``initialize``/``load``) must
        re-forward to the fresh instance; the base class remembers the
        facade in ``self._telemetry`` for that purpose.  Observational
        only — no storage decision ever reads from it.
        """
        self._telemetry = telemetry
        self.wal.attach_telemetry(telemetry)

    def storage_bytes(self) -> int:
        """Bytes of durable state retained (checkpoints + WAL + manifest)."""
        return 0

    def close(self) -> None:
        """Release backend resources (file handles)."""


class MemoryStore(CheckpointStore):
    """The historical in-process behavior, extracted behind the API.

    Checkpoint lines and the manifest live in dicts; the WAL is a
    :class:`SegmentedLog` holding plain event lists.  ``load`` always
    fails — process memory does not survive the process.

    >>> store = MemoryStore()
    >>> store.initialize()
    >>> store.register(0)
    >>> store.latest(0) is None
    True
    >>> store.save(0, "checkpoint-line")
    >>> store.latest(0)
    'checkpoint-line'
    >>> store.load()
    Traceback (most recent call last):
        ...
    repro.errors.StateError: memory store has no durable state to recover
    """

    def __init__(self, wal_segment_events: int | None = None) -> None:
        self._wal = SegmentedLog(wal_segment_events)
        self._lines: dict[int, str | None] = {}
        self._manifest: dict[str, Any] | None = None
        self._journal: list[str] = []

    @property
    def wal(self) -> SegmentedLog:
        return self._wal

    def initialize(self) -> None:
        self._wal = SegmentedLog(self._wal.segment_events)
        self._wal.attach_telemetry(getattr(self, "_telemetry", None))
        self._lines = {}
        self._manifest = None
        self._journal = []

    def load(self) -> dict[str, Any]:
        raise StateError("memory store has no durable state to recover")

    def register(self, node_id: int) -> None:
        self._lines.setdefault(node_id, None)
        self._wal.register(node_id)

    def save(self, node_id: int, line: str) -> None:
        if node_id not in self._lines:
            raise StateError(f"node {node_id} is not registered")
        self._lines[node_id] = line

    def latest(self, node_id: int) -> str | None:
        try:
            return self._lines[node_id]
        except KeyError:
            raise StateError(f"node {node_id} is not registered") from None

    def drop(self, node_id: int) -> None:
        self._lines.pop(node_id, None)
        self._wal.drop(node_id)

    def write_manifest(self, payload: Mapping[str, Any]) -> None:
        self._manifest = dict(payload)

    def manifest(self) -> dict[str, Any] | None:
        return self._manifest

    def journal_migration(self, line: str) -> None:
        self._journal.append(line)

    def pending_migrations(self) -> list[str]:
        return list(self._journal)

    def clear_migration_journal(self) -> None:
        self._journal = []

    def storage_bytes(self) -> int:
        checkpoint_bytes = sum(
            len(line.encode("utf-8")) + 1
            for line in self._lines.values()
            if line is not None
        )
        return checkpoint_bytes + self._wal.storage_bytes()


def _atomic_write(path: pathlib.Path, text: str) -> None:
    """Write-then-rename so readers never observe a torn file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class FileStore(CheckpointStore):
    """One directory per cluster; every durable record is checksummed.

    Layout (see the module docstring): ``manifest.json`` at the root,
    one ``checkpoints/node-<id>.ckpt`` per node (the latest checkpoint
    line, replaced atomically), and a :class:`SegmentedLog` directory
    per node under ``wal/``.  Checkpoint lines carry the
    :class:`~repro.cluster.checkpoint.BankCheckpoint` checksum and the
    manifest its own, so a truncated or bit-flipped file raises
    :class:`~repro.errors.StateError` instead of resurrecting a silently
    wrong cluster.

    :meth:`initialize` refuses to clobber a directory that already holds
    a cluster manifest unless ``overwrite=True`` — the durability layer
    must never destroy durable state by accident.  The constructor has
    no filesystem side effects, so probing a wrong path with
    :func:`~repro.cluster.simulation.recover_cluster` leaves nothing
    behind.

    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     store = FileStore(tmp, wal_segment_events=4)
    ...     store.initialize()
    ...     store.register(0)
    ...     store.save(0, "checkpoint-line")
    ...     store.write_manifest({"topology": {"nodes": [0]}})
    ...     reopened = FileStore(tmp)
    ...     manifest = reopened.load()
    ...     found = (reopened.latest(0), manifest["topology"]["nodes"])
    ...     store.close(); reopened.close()
    >>> found
    ('checkpoint-line', [0])
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        wal_segment_events: int | None = None,
        overwrite: bool = False,
        wal_fsync_every: int | None = None,
    ) -> None:
        self._dir = pathlib.Path(directory)
        self._checkpoint_dir = self._dir / "checkpoints"
        self._wal_dir = self._dir / "wal"
        self._manifest_path = self._dir / "manifest.json"
        self._journal_path = self._dir / "migration.journal"
        self._overwrite = overwrite
        self._wal_fsync_every = wal_fsync_every
        self._wal = _FileSegmentedLog(
            self._wal_dir, wal_segment_events, wal_fsync_every
        )
        self._lines: dict[int, str | None] = {}
        self._manifest: dict[str, Any] | None = None

    @property
    def directory(self) -> pathlib.Path:
        """The cluster's storage directory."""
        return self._dir

    @property
    def wal(self) -> SegmentedLog:
        return self._wal

    def _checkpoint_path(self, node_id: int) -> pathlib.Path:
        return self._checkpoint_dir / f"node-{node_id}.ckpt"

    def initialize(self) -> None:
        """Start a fresh cluster in the directory.

        Refuses (``StateError``) when the directory already holds a
        cluster manifest, unless the store was built with
        ``overwrite=True`` — re-running a simulation over a durable
        cluster must be an explicit decision, never an accident.
        """
        if self._manifest_path.exists() and not self._overwrite:
            raise StateError(
                f"{self._dir} already holds a cluster manifest; "
                "recover it with recover_cluster(), choose a fresh "
                "directory, or pass overwrite=True to discard it"
            )
        self._wal.close()
        shutil.rmtree(self._checkpoint_dir, ignore_errors=True)
        shutil.rmtree(self._wal_dir, ignore_errors=True)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._manifest_path.unlink(missing_ok=True)
        self._journal_path.unlink(missing_ok=True)
        self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._wal_dir.mkdir(parents=True, exist_ok=True)
        self._wal = _FileSegmentedLog(
            self._wal_dir, self._wal.segment_events, self._wal_fsync_every
        )
        self._wal.attach_telemetry(getattr(self, "_telemetry", None))
        self._lines = {}
        self._manifest = None

    def load(self) -> dict[str, Any]:
        """Open a persisted cluster: manifest, checkpoints, WAL replay.

        The WAL segment size is taken from the manifest's config echo,
        so a recovered log fences exactly like the one that wrote it.
        """
        if self._manifest is not None:
            return self._manifest
        if not self._manifest_path.exists():
            raise StateError(
                f"no cluster manifest at {self._manifest_path}"
            )
        body = decode_checksummed_line(
            self._manifest_path.read_text(encoding="utf-8").strip(),
            _MANIFEST_CHECKSUM_SEED,
            kind="cluster manifest",
        )
        if body.get("manifest_version") != _MANIFEST_VERSION:
            raise StateError(
                "unsupported cluster manifest version "
                f"{body.get('manifest_version')!r}"
            )
        manifest = dict(body)
        config_echo = manifest.get("config", {})
        segment_events = config_echo.get("wal_segment_events")
        fsync_every = config_echo.get("wal_fsync_every")
        self._wal.close()
        self._wal = _FileSegmentedLog(
            self._wal_dir, segment_events, fsync_every
        )
        self._wal.attach_telemetry(getattr(self, "_telemetry", None))
        try:
            node_ids = [
                int(node) for node in manifest["topology"]["nodes"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise StateError(
                f"malformed cluster manifest: {exc}"
            ) from exc
        for node_id in node_ids:
            path = self._checkpoint_path(node_id)
            self._lines[node_id] = (
                path.read_text(encoding="utf-8").strip()
                if path.exists()
                else None
            )
            self._wal.load(node_id)
        self._manifest = manifest
        return manifest

    def register(self, node_id: int) -> None:
        self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._lines.setdefault(node_id, None)
        self._wal.register(node_id)

    def save(self, node_id: int, line: str) -> None:
        if node_id not in self._lines:
            raise StateError(f"node {node_id} is not registered")
        _atomic_write(self._checkpoint_path(node_id), line + "\n")
        self._lines[node_id] = line

    def latest(self, node_id: int) -> str | None:
        try:
            return self._lines[node_id]
        except KeyError:
            raise StateError(f"node {node_id} is not registered") from None

    def drop(self, node_id: int) -> None:
        self._checkpoint_path(node_id).unlink(missing_ok=True)
        self._lines.pop(node_id, None)
        self._wal.drop(node_id)

    def write_manifest(self, payload: Mapping[str, Any]) -> None:
        body = dict(payload)
        body["manifest_version"] = _MANIFEST_VERSION
        _atomic_write(
            self._manifest_path,
            encode_checksummed_line(body, _MANIFEST_CHECKSUM_SEED) + "\n",
        )
        self._manifest = body

    def manifest(self) -> dict[str, Any] | None:
        return self._manifest

    def journal_migration(self, line: str) -> None:
        # Append + fsync per batch: the journal is the only durable
        # copy of an in-flight batch, so it must hit the platter before
        # the absorb runs.  Migrations are rare (one per topology
        # change), so per-line open/sync costs nothing that matters.
        with open(self._journal_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def pending_migrations(self) -> list[str]:
        if not self._journal_path.exists():
            return []
        text = self._journal_path.read_text(encoding="utf-8")
        return [line for line in text.splitlines() if line.strip()]

    def clear_migration_journal(self) -> None:
        self._journal_path.unlink(missing_ok=True)

    def storage_bytes(self) -> int:
        """Actual bytes on disk under the store directory."""
        return sum(
            path.stat().st_size
            for path in self._dir.rglob("*")
            if path.is_file()
        )

    def close(self) -> None:
        self._wal.close()


#: Backend registry for configs and CLI flags.
STORAGE_BACKENDS: tuple[str, ...] = ("memory", "file")


def make_store(
    storage: str,
    wal_segment_events: int | None = None,
    directory: str | os.PathLike[str] | None = None,
    overwrite: bool = False,
    wal_fsync_every: int | None = None,
) -> CheckpointStore:
    """Build a checkpoint store by backend name.

    ``wal_fsync_every`` enables group-commit fsync on file-backed WAL
    appends; the memory backend has no files to sync and ignores it (so
    one config can be replayed on both backends unchanged).

    >>> make_store("memory").latest  # doctest: +ELLIPSIS
    <bound method MemoryStore.latest of ...>
    >>> make_store("file")
    Traceback (most recent call last):
        ...
    repro.errors.ParameterError: file storage needs a directory
    """
    if storage == "memory":
        return MemoryStore(wal_segment_events)
    if storage == "file":
        if directory is None:
            raise ParameterError("file storage needs a directory")
        return FileStore(
            directory,
            wal_segment_events,
            overwrite=overwrite,
            wal_fsync_every=wal_fsync_every,
        )
    known = ", ".join(STORAGE_BACKENDS)
    raise ParameterError(
        f"unknown storage backend {storage!r}; known: {known}"
    )
