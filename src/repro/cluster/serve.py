"""``cluster serve``: worker daemons with a managed lifecycle.

The process execution plan (:class:`~repro.cluster.pipeline.
ProcessPlan`) spawns its workers as children for the duration of one
run.  This module is the other deployment shape: *long-running* worker
daemons, one per node, listening on Unix sockets under the cluster
storage directory — brought up, inspected, and torn down by the
``cluster serve up | ps | status | down`` CLI subcommands.

Layout under ``<root>/serve/``::

    fleet.json        what was launched (template, seed, worker table)
    node-<id>.sock    the worker's Unix listening socket
    node-<id>.pid     written by the worker *after* bind — readiness
    node-<id>.log     the worker's captured stderr

Every worker is a ``python -m repro.cluster.worker --listen ...``
daemon (``start_new_session=True``, so it outlives the CLI process)
seeded with :func:`~repro.cluster.simulation.node_seed` — the same
derivation the in-process simulation uses, so state moves freely
between deployment modes.  The pidfile doubles as the readiness
marker: the worker writes it only once its socket is bound and
accepting, which is what :func:`fleet_up` polls for.

Lifecycle contract:

* ``up`` refuses to run while a ``fleet.json`` exists — a half-dead
  fleet is ``down``'s job to clean up, not ``up``'s to silently
  replace.
* ``down`` prefers the protocol (``shutdown`` → ``bye``, the worker
  unlinks its own socket and pidfile), then escalates to ``SIGTERM``
  and finally ``SIGKILL``, and always removes ``fleet.json`` so the
  next ``up`` can proceed.  Logs are kept.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

from repro.cluster.node import CounterTemplate
from repro.cluster.pipeline import worker_environment
from repro.cluster.simulation import node_seed
from repro.cluster.transport import FrameStream
from repro.errors import ParameterError, StateError

__all__ = [
    "fleet_down",
    "fleet_paths",
    "fleet_ps",
    "fleet_status",
    "fleet_up",
    "load_fleet",
]

_FLEET_FILE = "fleet.json"
_POLL_S = 0.05


def fleet_paths(root: str | Path) -> Path:
    """The serve directory under a cluster storage root."""
    return Path(root) / "serve"


def _worker_paths(base: Path, node_id: int) -> tuple[Path, Path, Path]:
    stem = f"node-{node_id}"
    return (
        base / f"{stem}.sock",
        base / f"{stem}.pid",
        base / f"{stem}.log",
    )


def _pid_alive(pid: int) -> bool:
    # When the worker is our own child (the launching process is still
    # around), a dead worker lingers as a zombie that signal 0 would
    # report alive — reap it first.  ECHILD means it was launched by
    # another process (the normal daemon case); signal 0 decides then.
    try:
        reaped, _ = os.waitpid(pid, os.WNOHANG)
        if reaped == pid:
            return False
    except ChildProcessError:
        pass
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def _read_pid(pidfile: Path) -> int | None:
    try:
        text = pidfile.read_text(encoding="utf-8").strip()
    except OSError:
        return None
    return int(text) if text.isdigit() else None


def load_fleet(root: str | Path) -> dict[str, Any]:
    """The ``fleet.json`` record of the fleet launched under ``root``."""
    path = fleet_paths(root) / _FLEET_FILE
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise StateError(
            f"no fleet is recorded under {path.parent} — "
            "run 'cluster serve up' first"
        )
    return json.loads(text)


def fleet_up(
    root: str | Path,
    n_nodes: int,
    template: CounterTemplate,
    seed: int = 0,
    buffer_limit: int = 512,
    track_truth: bool = True,
    timeout: float = 10.0,
) -> list[dict[str, Any]]:
    """Launch one worker daemon per node; returns the worker table.

    Blocks until every worker's pidfile appears (socket bound and
    accepting) or ``timeout`` seconds pass — on timeout the stragglers
    are killed and the launch fails whole, pointing at the dead
    worker's log.
    """
    if n_nodes < 1:
        raise ParameterError(f"n_nodes must be >= 1, got {n_nodes}")
    base = fleet_paths(root)
    base.mkdir(parents=True, exist_ok=True)
    if (base / _FLEET_FILE).exists():
        raise StateError(
            f"a fleet is already recorded in {base / _FLEET_FILE} — "
            "run 'cluster serve down' before launching another"
        )
    template_json = json.dumps(
        template.to_dict(), sort_keys=True, allow_nan=False
    )
    workers: list[dict[str, Any]] = []
    launched: list[subprocess.Popen[bytes]] = []
    try:
        for node_id in range(n_nodes):
            sock_path, pid_path, log_path = _worker_paths(base, node_id)
            for stale in (sock_path, pid_path):
                stale.unlink(missing_ok=True)
            command = [
                sys.executable,
                "-m",
                "repro.cluster.worker",
                "--listen",
                str(sock_path),
                "--pidfile",
                str(pid_path),
                "--node-id",
                str(node_id),
                "--template-json",
                template_json,
                "--seed",
                str(node_seed(seed, node_id)),
                "--buffer-limit",
                str(buffer_limit),
            ]
            if not track_truth:
                command.append("--no-track-truth")
            with open(log_path, "ab") as log:
                process = subprocess.Popen(
                    command,
                    stdin=subprocess.DEVNULL,
                    stdout=log,
                    stderr=log,
                    env=worker_environment(),
                    start_new_session=True,
                )
            launched.append(process)
            workers.append(
                {
                    "node": node_id,
                    "pid": process.pid,
                    "socket": str(sock_path),
                    "pidfile": str(pid_path),
                    "log": str(log_path),
                }
            )
        deadline = time.monotonic() + timeout
        for record in workers:
            pid_path = Path(record["pidfile"])
            while not pid_path.exists():
                if time.monotonic() > deadline:
                    raise StateError(
                        f"worker for node {record['node']} did not "
                        f"become ready within {timeout:g}s — see "
                        f"{record['log']}"
                    )
                time.sleep(_POLL_S)
    except BaseException:
        for process in launched:
            process.kill()
            process.wait()
        for record in workers:
            Path(record["pidfile"]).unlink(missing_ok=True)
            Path(record["socket"]).unlink(missing_ok=True)
        raise
    payload = {
        "version": 1,
        "seed": seed,
        "n_nodes": n_nodes,
        "template": template.to_dict(),
        "buffer_limit": buffer_limit,
        "track_truth": track_truth,
        "workers": workers,
    }
    (base / _FLEET_FILE).write_text(
        json.dumps(payload, sort_keys=True, allow_nan=False, indent=2)
        + "\n",
        encoding="utf-8",
    )
    return workers


def fleet_ps(root: str | Path) -> list[dict[str, Any]]:
    """One row per launched worker: liveness from pidfile + signal 0."""
    fleet = load_fleet(root)
    rows = []
    for record in fleet["workers"]:
        pid = _read_pid(Path(record["pidfile"]))
        if pid is None:
            pid, state = record["pid"], "stopped"
        else:
            state = "running" if _pid_alive(pid) else "stopped"
        rows.append(
            {
                "node": record["node"],
                "pid": pid,
                "state": state,
                "socket": record["socket"],
                "log": record["log"],
            }
        )
    return rows


def _connect(record: dict[str, Any], timeout: float) -> FrameStream:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(record["socket"])
    except OSError:
        sock.close()
        raise
    stream = FrameStream.from_socket(sock)
    sock.close()  # the stream's file objects keep the fd alive
    return stream


def fleet_status(
    root: str | Path, timeout: float = 5.0
) -> list[dict[str, Any]]:
    """One row per worker, filled by a live ``ping`` over its socket."""
    fleet = load_fleet(root)
    rows = []
    for record in fleet["workers"]:
        row: dict[str, Any] = {"node": record["node"]}
        try:
            stream = _connect(record, timeout)
        except OSError as exc:
            row.update(state="unreachable", error=str(exc))
            rows.append(row)
            continue
        try:
            pong = stream.request("ping", "pong")
        except (StateError, OSError) as exc:
            row.update(state="unreachable", error=str(exc))
        else:
            row.update(
                state="running",
                pid=pong["pid"],
                keys=pong["keys"],
                pending=pong["pending"],
                events_ingested=pong["events_ingested"],
            )
        finally:
            stream.close()
        rows.append(row)
    return rows


def fleet_down(
    root: str | Path, timeout: float = 10.0
) -> list[dict[str, Any]]:
    """Stop every worker and forget the fleet; returns outcome rows.

    Per worker: protocol shutdown first (the worker unlinks its own
    socket and pidfile), then ``SIGTERM``, then ``SIGKILL`` — each
    escalation only after the previous one failed to end the process
    within its share of ``timeout``.  Always removes ``fleet.json``.
    """
    base = fleet_paths(root)
    fleet = load_fleet(root)
    rows = []
    for record in fleet["workers"]:
        node_id = record["node"]
        pid = _read_pid(Path(record["pidfile"])) or record["pid"]
        if not _pid_alive(pid):
            outcome = "already stopped"
        else:
            outcome = _stop_worker(record, pid, timeout)
        Path(record["socket"]).unlink(missing_ok=True)
        Path(record["pidfile"]).unlink(missing_ok=True)
        rows.append({"node": node_id, "pid": pid, "state": outcome})
    (base / _FLEET_FILE).unlink(missing_ok=True)
    return rows


def _stop_worker(
    record: dict[str, Any], pid: int, timeout: float
) -> str:
    """Protocol shutdown → SIGTERM → SIGKILL; returns how it ended."""
    share = max(timeout / 2, _POLL_S)
    try:
        stream = _connect(record, share)
        try:
            stream.send("shutdown")
            stream.expect("bye")
        finally:
            stream.close()
    except (StateError, OSError):
        pass
    else:
        if _wait_dead(pid, share):
            return "stopped"
    for sig, outcome in (
        (signal.SIGTERM, "terminated"),
        (signal.SIGKILL, "killed"),
    ):
        try:
            os.kill(pid, sig)
        except ProcessLookupError:
            return "stopped"
        if _wait_dead(pid, share):
            return outcome
    return "killed"  # pragma: no cover - SIGKILL cannot be refused


def _wait_dead(pid: int, timeout: float) -> bool:
    deadline = time.monotonic() + timeout
    while _pid_alive(pid):
        if time.monotonic() > deadline:
            return False
        time.sleep(_POLL_S)
    return True
