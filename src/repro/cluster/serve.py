"""``cluster serve``: worker daemons with a managed lifecycle.

The process execution plan (:class:`~repro.cluster.pipeline.
ProcessPlan`) spawns its workers as children for the duration of one
run.  This module is the other deployment shape: *long-running* worker
daemons, one per node, listening on Unix sockets under the cluster
storage directory — brought up, inspected, and torn down by the
``cluster serve up | ps | status | down`` CLI subcommands.

Layout under ``<root>/serve/``::

    fleet.json        what was launched (template, seed, worker table)
    node-<id>.sock    the worker's Unix listening socket
    node-<id>.pid     written by the worker *after* bind — readiness
    node-<id>.log     the worker's captured stderr

Every worker is a ``python -m repro.cluster.worker --listen ...``
daemon (``start_new_session=True``, so it outlives the CLI process)
seeded with :func:`~repro.cluster.simulation.node_seed` — the same
derivation the in-process simulation uses, so state moves freely
between deployment modes.  The pidfile doubles as the readiness
marker: the worker writes it only once its socket is bound and
accepting, which is what :func:`fleet_up` polls for.

Lifecycle contract:

* ``up`` refuses to run while a ``fleet.json`` exists — a half-dead
  fleet is ``down``'s job to clean up, not ``up``'s to silently
  replace.
* ``down`` prefers the protocol (``shutdown`` → ``bye``, the worker
  unlinks its own socket and pidfile), then escalates to ``SIGTERM``
  and finally ``SIGKILL``, and always removes ``fleet.json`` so the
  next ``up`` can proceed.  Logs are kept.

PR 9 adds the fleet's *serving* face: :class:`FleetReader` answers the
:class:`~repro.cluster.query.ClusterReader` query API against the live
workers over the wire protocol (``snapshot_request`` with
``flush=false`` — the documented pure read — for bounded-staleness
replica answers; ``flush=true``, the barrier pull, for consistent
ones), and ``cluster serve query up | status | down`` manages an HTTP
daemon (``python -m repro.cluster.httpd``) exposing it, recorded as
``query.json`` / ``query.pid`` / ``query.log`` next to the fleet with
the same record-after-bind readiness convention.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

from repro.cluster.aggregator import GlobalView, tree_merge
from repro.cluster.checkpoint import BankCheckpoint
from repro.cluster.entities import StalenessInfo
from repro.cluster.node import CounterTemplate
from repro.cluster.pipeline import worker_environment
from repro.cluster.query import ClusterReader
from repro.cluster.simulation import node_seed
from repro.cluster.transport import FrameStream
from repro.core.base import ApproximateCounter
from repro.errors import ParameterError, StateError
from repro.obs import MetricsRegistry

__all__ = [
    "FleetReader",
    "fleet_down",
    "fleet_paths",
    "fleet_ps",
    "fleet_status",
    "fleet_up",
    "load_fleet",
    "load_query",
    "query_down",
    "query_status",
    "query_up",
]

_FLEET_FILE = "fleet.json"
_QUERY_FILE = "query.json"
_POLL_S = 0.05


def fleet_paths(root: str | Path) -> Path:
    """The serve directory under a cluster storage root."""
    return Path(root) / "serve"


def _worker_paths(base: Path, node_id: int) -> tuple[Path, Path, Path]:
    stem = f"node-{node_id}"
    return (
        base / f"{stem}.sock",
        base / f"{stem}.pid",
        base / f"{stem}.log",
    )


def _pid_alive(pid: int) -> bool:
    # When the worker is our own child (the launching process is still
    # around), a dead worker lingers as a zombie that signal 0 would
    # report alive — reap it first.  ECHILD means it was launched by
    # another process (the normal daemon case); signal 0 decides then.
    try:
        reaped, _ = os.waitpid(pid, os.WNOHANG)
        if reaped == pid:
            return False
    except ChildProcessError:
        pass
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def _read_pid(pidfile: Path) -> int | None:
    try:
        text = pidfile.read_text(encoding="utf-8").strip()
    except OSError:
        return None
    return int(text) if text.isdigit() else None


def load_fleet(root: str | Path) -> dict[str, Any]:
    """The ``fleet.json`` record of the fleet launched under ``root``."""
    path = fleet_paths(root) / _FLEET_FILE
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise StateError(
            f"no fleet is recorded under {path.parent} — "
            "run 'cluster serve up' first"
        )
    return json.loads(text)


def fleet_up(
    root: str | Path,
    n_nodes: int,
    template: CounterTemplate,
    seed: int = 0,
    buffer_limit: int = 512,
    track_truth: bool = True,
    timeout: float = 10.0,
) -> list[dict[str, Any]]:
    """Launch one worker daemon per node; returns the worker table.

    Blocks until every worker's pidfile appears (socket bound and
    accepting) or ``timeout`` seconds pass — on timeout the stragglers
    are killed and the launch fails whole, pointing at the dead
    worker's log.
    """
    if n_nodes < 1:
        raise ParameterError(f"n_nodes must be >= 1, got {n_nodes}")
    base = fleet_paths(root)
    base.mkdir(parents=True, exist_ok=True)
    if (base / _FLEET_FILE).exists():
        raise StateError(
            f"a fleet is already recorded in {base / _FLEET_FILE} — "
            "run 'cluster serve down' before launching another"
        )
    template_json = json.dumps(
        template.to_dict(), sort_keys=True, allow_nan=False
    )
    workers: list[dict[str, Any]] = []
    launched: list[subprocess.Popen[bytes]] = []
    try:
        for node_id in range(n_nodes):
            sock_path, pid_path, log_path = _worker_paths(base, node_id)
            for stale in (sock_path, pid_path):
                stale.unlink(missing_ok=True)
            command = [
                sys.executable,
                "-m",
                "repro.cluster.worker",
                "--listen",
                str(sock_path),
                "--pidfile",
                str(pid_path),
                "--node-id",
                str(node_id),
                "--template-json",
                template_json,
                "--seed",
                str(node_seed(seed, node_id)),
                "--buffer-limit",
                str(buffer_limit),
            ]
            if not track_truth:
                command.append("--no-track-truth")
            with open(log_path, "ab") as log:
                process = subprocess.Popen(
                    command,
                    stdin=subprocess.DEVNULL,
                    stdout=log,
                    stderr=log,
                    env=worker_environment(),
                    start_new_session=True,
                )
            launched.append(process)
            workers.append(
                {
                    "node": node_id,
                    "pid": process.pid,
                    "socket": str(sock_path),
                    "pidfile": str(pid_path),
                    "log": str(log_path),
                }
            )
        deadline = time.monotonic() + timeout
        for record in workers:
            pid_path = Path(record["pidfile"])
            while not pid_path.exists():
                if time.monotonic() > deadline:
                    raise StateError(
                        f"worker for node {record['node']} did not "
                        f"become ready within {timeout:g}s — see "
                        f"{record['log']}"
                    )
                time.sleep(_POLL_S)
    except BaseException:
        for process in launched:
            process.kill()
            process.wait()
        for record in workers:
            Path(record["pidfile"]).unlink(missing_ok=True)
            Path(record["socket"]).unlink(missing_ok=True)
        raise
    payload = {
        "version": 1,
        "seed": seed,
        "n_nodes": n_nodes,
        "template": template.to_dict(),
        "buffer_limit": buffer_limit,
        "track_truth": track_truth,
        "workers": workers,
    }
    (base / _FLEET_FILE).write_text(
        json.dumps(payload, sort_keys=True, allow_nan=False, indent=2)
        + "\n",
        encoding="utf-8",
    )
    return workers


def fleet_ps(root: str | Path) -> list[dict[str, Any]]:
    """One row per launched worker: liveness from pidfile + signal 0."""
    fleet = load_fleet(root)
    rows = []
    for record in fleet["workers"]:
        pid = _read_pid(Path(record["pidfile"]))
        if pid is None:
            pid, state = record["pid"], "stopped"
        else:
            state = "running" if _pid_alive(pid) else "stopped"
        rows.append(
            {
                "node": record["node"],
                "pid": pid,
                "state": state,
                "socket": record["socket"],
                "log": record["log"],
            }
        )
    return rows


def _connect(record: dict[str, Any], timeout: float) -> FrameStream:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(record["socket"])
    except OSError:
        sock.close()
        raise
    stream = FrameStream.from_socket(sock)
    sock.close()  # the stream's file objects keep the fd alive
    return stream


def fleet_status(
    root: str | Path, timeout: float = 5.0
) -> list[dict[str, Any]]:
    """One row per worker, filled by a live ``ping`` over its socket."""
    fleet = load_fleet(root)
    rows = []
    for record in fleet["workers"]:
        row: dict[str, Any] = {"node": record["node"]}
        try:
            stream = _connect(record, timeout)
        except OSError as exc:
            row.update(state="unreachable", error=str(exc))
            rows.append(row)
            continue
        try:
            pong = stream.request("ping", "pong")
        except (StateError, OSError) as exc:
            row.update(state="unreachable", error=str(exc))
        else:
            row.update(
                state="running",
                pid=pong["pid"],
                keys=pong["keys"],
                pending=pong["pending"],
                events_ingested=pong["events_ingested"],
            )
        finally:
            stream.close()
        rows.append(row)
    return rows


def fleet_down(
    root: str | Path, timeout: float = 10.0
) -> list[dict[str, Any]]:
    """Stop every worker and forget the fleet; returns outcome rows.

    Per worker: protocol shutdown first (the worker unlinks its own
    socket and pidfile), then ``SIGTERM``, then ``SIGKILL`` — each
    escalation only after the previous one failed to end the process
    within its share of ``timeout``.  Always removes ``fleet.json``.
    """
    base = fleet_paths(root)
    fleet = load_fleet(root)
    rows = []
    for record in fleet["workers"]:
        node_id = record["node"]
        pid = _read_pid(Path(record["pidfile"])) or record["pid"]
        if not _pid_alive(pid):
            outcome = "already stopped"
        else:
            outcome = _stop_worker(record, pid, timeout)
        Path(record["socket"]).unlink(missing_ok=True)
        Path(record["pidfile"]).unlink(missing_ok=True)
        rows.append({"node": node_id, "pid": pid, "state": outcome})
    (base / _FLEET_FILE).unlink(missing_ok=True)
    return rows


def _stop_worker(
    record: dict[str, Any], pid: int, timeout: float
) -> str:
    """Protocol shutdown → SIGTERM → SIGKILL; returns how it ended."""
    share = max(timeout / 2, _POLL_S)
    try:
        stream = _connect(record, share)
        try:
            stream.send("shutdown")
            stream.expect("bye")
        finally:
            stream.close()
    except (StateError, OSError):
        pass
    else:
        if _wait_dead(pid, share):
            return "stopped"
    for sig, outcome in (
        (signal.SIGTERM, "terminated"),
        (signal.SIGKILL, "killed"),
    ):
        try:
            os.kill(pid, sig)
        except ProcessLookupError:
            return "stopped"
        if _wait_dead(pid, share):
            return outcome
    return "killed"  # pragma: no cover - SIGKILL cannot be refused


def _wait_dead(pid: int, timeout: float) -> bool:
    deadline = time.monotonic() + timeout
    while _pid_alive(pid):
        if time.monotonic() > deadline:
            return False
        time.sleep(_POLL_S)
    return True


# ----------------------------------------------------------------------
# the fleet's serving face: query API over live workers
# ----------------------------------------------------------------------
class FleetReader(ClusterReader):
    """The :class:`~repro.cluster.query.ClusterReader` API over a fleet.

    Same queries (``get`` / ``top_k`` / ``view`` / ``subscribe``), same
    entities, same consistency knob — answered over the wire protocol
    against the live worker daemons instead of in-process objects:

    ``"replica"``
        ``snapshot_request`` with ``flush=false`` per worker — the
        protocol's documented pure read.  Events a worker has accepted
        but not yet flushed are missing from the answer; the staleness
        stamp reports exactly that lag (the sum of every worker's
        ``pending``), bounded by ``buffer_limit × n_nodes``.
    ``"consistent"``
        ``flush=true`` — the barrier pull.  Every worker applies its
        buffer first; zero lag, paid for with one flush per worker.

    Workers shard the keyspace (they are not gossip replicas of each
    other), so every read folds all of them and targeting a single
    ``replica=`` node id is refused.  The read cache is stamped by a
    ``ping`` sweep — ``(node, events_ingested, pending)`` per worker —
    so repeated reads against an idle fleet pull snapshots once.
    """

    def __init__(self, root: str | Path, timeout: float = 5.0) -> None:
        fleet = load_fleet(root)
        self._fleet = fleet
        self._timeout = timeout
        # No aggregator/gossip behind this reader — the wire protocol
        # is the backend — so ClusterReader.__init__ is skipped and the
        # shared cache/default fields are set directly.
        self._gossip = None
        self._nodes = None
        self._simulation = None
        self._consistency = None
        self._replica = None
        self._fanout = 2
        self._gossip_every = None
        self._registry = MetricsRegistry()
        self._cache = {}
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def replicas(self) -> tuple[int, ...]:
        """The fleet's worker node ids."""
        return tuple(
            record["node"] for record in self._fleet["workers"]
        )

    def _resolve_consistency(self, consistency: str | None) -> str:
        if consistency is None:
            consistency = self._consistency
        if consistency is None:
            consistency = "replica"
        return super()._resolve_consistency(consistency)

    def _refuse_replica(self, replica: int | None) -> None:
        if replica is not None:
            raise ParameterError(
                "fleet reads fold every worker (workers shard the "
                "keyspace, they are not replicas of each other); "
                "replica= selection applies to gossip clusters"
            )

    def _stamp_of(
        self, pings: list[dict[str, Any]]
    ) -> tuple[tuple[int, int, int], ...]:
        return tuple(
            (pong["node"], pong["events_ingested"], pong["pending"])
            for pong in sorted(pings, key=lambda p: p["node"])
        )

    def _ping_sweep(self) -> list[dict[str, Any]]:
        pings = []
        for record in self._fleet["workers"]:
            stream = _connect(record, self._timeout)
            try:
                pings.append(stream.request("ping", "pong"))
            finally:
                stream.close()
        return pings

    def _pull(
        self, flush: bool
    ) -> tuple[list[Any], list[dict[str, Any]]]:
        """Snapshot every worker (optionally flushing), then ping it on
        the same connection so the stamp reflects the pulled state."""
        banks = []
        pings = []
        for record in self._fleet["workers"]:
            stream = _connect(record, self._timeout)
            try:
                reply = stream.request(
                    "snapshot_request", "snapshot_reply", flush=flush
                )
                pings.append(stream.request("ping", "pong"))
            finally:
                stream.close()
            banks.append(BankCheckpoint.decode(reply["line"]).restore())
        return banks, pings

    def _fold(self, banks: list[Any]) -> GlobalView:
        per_key: dict[str, list[ApproximateCounter]] = {}
        for bank in banks:
            for key, counter in bank.items():
                per_key.setdefault(key, []).append(counter)
        track = all(bank.tracks_truth for bank in banks)
        truth: dict[str, int] | None = {} if track else None
        merged: dict[str, ApproximateCounter] = {}
        rounds = 0
        for key in sorted(per_key):
            merged[key], key_rounds = tree_merge(per_key[key], 2)
            rounds = max(rounds, key_rounds)
            if truth is not None:
                truth[key] = sum(
                    bank.truth(key) for bank in banks if key in bank
                )
        return GlobalView(
            counters=merged,
            truth=truth,
            merge_rounds=rounds,
            epoch=0,
        )

    def raw_view(
        self,
        consistency: str | None = None,
        replica: int | None = None,
    ) -> GlobalView:
        consistency = self._resolve_consistency(consistency)
        self._refuse_replica(replica)
        view_key = (consistency, None)
        stamp = self._stamp_of(self._ping_sweep())
        cached = self._cache.get(view_key)
        if cached is not None and cached[0] == stamp:
            self._note_cache(hit=True)
            return cached[1]
        banks, pings = self._pull(flush=consistency == "consistent")
        view = self._fold(banks)
        self._cache[view_key] = (self._stamp_of(pings), view)
        self._note_cache(hit=False)
        return view

    def staleness(
        self,
        consistency: str | None = None,
        replica: int | None = None,
    ) -> StalenessInfo:
        consistency = self._resolve_consistency(consistency)
        self._refuse_replica(replica)
        bound = self._fleet["buffer_limit"] * self._fleet["n_nodes"]
        lag = 0
        if consistency == "replica":
            lag = sum(
                pong["pending"] for pong in self._ping_sweep()
            )
        return StalenessInfo(
            consistency=consistency,
            replica=None,
            lag_events=lag,
            bound_events=bound,
            epoch=0,
        )


# ----------------------------------------------------------------------
# query daemon lifecycle
# ----------------------------------------------------------------------
def _query_paths(root: str | Path) -> tuple[Path, Path, Path]:
    base = fleet_paths(root)
    return (
        base / _QUERY_FILE,
        base / "query.pid",
        base / "query.log",
    )


def load_query(root: str | Path) -> dict[str, Any]:
    """The ``query.json`` record of the daemon serving ``root``."""
    record_path, _, _ = _query_paths(root)
    try:
        text = record_path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise StateError(
            f"no query daemon is recorded under {record_path.parent} — "
            "run 'cluster serve query up' first"
        )
    return json.loads(text)


def query_up(
    root: str | Path,
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: float = 10.0,
) -> dict[str, Any]:
    """Launch the HTTP query daemon against the recorded fleet.

    Blocks until the daemon writes its ``query.json`` record (socket
    bound, port chosen — the record-after-bind readiness marker) or
    ``timeout`` passes, in which case the straggler is killed and the
    launch fails pointing at the log.  Returns the record.
    """
    load_fleet(root)  # loud when there is no fleet to serve
    record_path, pid_path, log_path = _query_paths(root)
    if record_path.exists():
        raise StateError(
            f"a query daemon is already recorded in {record_path} — "
            "run 'cluster serve query down' before launching another"
        )
    pid_path.unlink(missing_ok=True)
    command = [
        sys.executable,
        "-m",
        "repro.cluster.httpd",
        "--fleet-dir",
        str(root),
        "--host",
        host,
        "--port",
        str(port),
        "--record",
        str(record_path),
        "--pidfile",
        str(pid_path),
    ]
    with open(log_path, "ab") as log:
        process = subprocess.Popen(
            command,
            stdin=subprocess.DEVNULL,
            stdout=log,
            stderr=log,
            env=worker_environment(),
            start_new_session=True,
        )
    deadline = time.monotonic() + timeout
    while not record_path.exists():
        if process.poll() is not None or time.monotonic() > deadline:
            process.kill()
            process.wait()
            pid_path.unlink(missing_ok=True)
            raise StateError(
                f"query daemon did not become ready within "
                f"{timeout:g}s — see {log_path}"
            )
        time.sleep(_POLL_S)
    return json.loads(record_path.read_text(encoding="utf-8"))


def query_status(
    root: str | Path, timeout: float = 5.0
) -> dict[str, Any]:
    """One row for the query daemon, filled by a live ``/healthz``."""
    import urllib.error
    import urllib.request

    record = load_query(root)
    pid_path = _query_paths(root)[1]
    pid = _read_pid(pid_path) or record["pid"]
    row: dict[str, Any] = {"pid": pid, "url": record["url"]}
    if not _pid_alive(pid):
        row.update(state="stopped")
        return row
    try:
        with urllib.request.urlopen(
            record["url"] + "/healthz", timeout=timeout
        ) as response:
            health = json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        row.update(state="unreachable", error=str(exc))
        return row
    row.update(state="running", replicas=health["replicas"])
    return row


def query_down(
    root: str | Path, timeout: float = 10.0
) -> dict[str, Any]:
    """Stop the query daemon and forget its record; returns the outcome.

    ``SIGTERM`` first (the daemon unlinks its own record and pidfile on
    the way out), then ``SIGKILL``; always removes the record so the
    next ``up`` can proceed.  The log is kept.
    """
    record = load_query(root)
    record_path, pid_path, _ = _query_paths(root)
    pid = _read_pid(pid_path) or record["pid"]
    share = max(timeout / 2, _POLL_S)
    if not _pid_alive(pid):
        outcome = "already stopped"
    else:
        outcome = "killed"
        for sig, name in (
            (signal.SIGTERM, "terminated"),
            (signal.SIGKILL, "killed"),
        ):
            try:
                os.kill(pid, sig)
            except ProcessLookupError:
                outcome = "stopped"
                break
            if _wait_dead(pid, share):
                outcome = name
                break
    record_path.unlink(missing_ok=True)
    pid_path.unlink(missing_ok=True)
    return {"pid": pid, "state": outcome}
