"""The cluster's one blessed read surface: ``ClusterReader``.

Reads used to be scattered across ad-hoc accessors — the aggregator's
``global_view()``, raw digest lookups, bench dict shaping.  This module
unifies them behind one versioned query API that both the in-process
callers and the HTTP frontend (:mod:`repro.cluster.httpd`) share:

* :meth:`ClusterReader.get` — one key's count;
* :meth:`ClusterReader.top_k` — the k heaviest keys;
* :meth:`ClusterReader.view` — the whole folded view;
* :meth:`ClusterReader.subscribe` — incremental count updates
  (:class:`Subscription`, the SSE feed's engine).

Every query takes a ``consistency=`` parameter:

``"replica"``
    Answer from one node's local gossip digest
    (:meth:`~repro.cluster.gossip.GossipNetwork.node_view` — a pure
    read: no flush, no RNG) and stamp the answer with an honest
    staleness bound (:meth:`~repro.cluster.gossip.GossipNetwork.
    digest_staleness`).  This is the "millions of readers" path: cheap,
    local, stale by at most the traffic since the origins' last
    refresh — and bit-identical to the central answer once the network
    has converged (on ``exact`` templates).
``"consistent"``
    Pay for the central fold
    (:meth:`~repro.cluster.aggregator.MergeTreeAggregator._fold_view`):
    flush every node and merge every key.  Zero staleness, full cost.

Answers are the typed entities of :mod:`repro.cluster.entities`
(``KeyCount`` / ``TopK`` / ``ViewSnapshot``), each stamped with a
:class:`~repro.cluster.entities.StalenessInfo`; :meth:`ClusterReader.
raw_view` exposes the underlying ``GlobalView`` for bit-identity
comparisons.

A per-template **read cache** sits under every query: folded views are
memoized per ``(consistency, replica)`` and invalidated by a validity
stamp — the digest's version/epoch stamp
(:meth:`~repro.cluster.gossip.GossipNetwork.read_stamp`) on the
replica path, the live nodes' lifetime event counts plus the topology
epoch on the consistent path — so a burst of reads against an idle
cluster folds once.

**Inertness.**  Replica reads never touch node state at all.  A
consistent read flushes (exactly as ``global_view()`` always has) —
which is why the served-run property test
(``tests/cluster/test_properties.py``) pins that serving a finished
run, replica and consistent endpoints included, leaves its fingerprint
bit-identical to an unserved run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.cluster.entities import (
    READ_CONSISTENCY,
    KeyCount,
    StalenessInfo,
    TopK,
    ViewSnapshot,
)
from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.aggregator import GlobalView, MergeTreeAggregator
    from repro.cluster.gossip import GossipNetwork
    from repro.cluster.node import IngestNode
    from repro.cluster.simulation import ClusterSimulation

__all__ = ["READ_CONSISTENCY", "ClusterReader", "Subscription"]


class ClusterReader:
    """Unified, cached, consistency-aware reads over one cluster.

    Parameters
    ----------
    aggregator:
        The cluster's :class:`~repro.cluster.aggregator.
        MergeTreeAggregator` (the consistent path's fold).
    gossip:
        The :class:`~repro.cluster.gossip.GossipNetwork`, when the
        cluster runs ``aggregation="gossip"`` — required for replica
        reads, absent for tree-only clusters.
    nodes:
        Live ``node id → IngestNode`` mapping used for staleness
        accounting; defaults to the aggregator's current nodes (pass a
        callable-free mapping only for static test fixtures — prefer
        :meth:`from_simulation`, which tracks topology changes).
    consistency:
        Reader-level default for queries that do not pass their own:
        ``"replica"`` when a gossip network is attached, else
        ``"consistent"``.
    replica:
        Default replica node id for replica reads (smallest gossip
        participant when unset).
    fanout:
        Merge fanout for replica folds (the cluster's ``config.fanout``).
    gossip_every:
        The configured gossip cadence, echoed into every staleness
        stamp as ``bound_events``.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry`; the reader
        publishes ``queries_total`` / ``query_cache_hits_total`` /
        ``query_cache_misses_total`` counters into it.
    """

    def __init__(
        self,
        aggregator: "MergeTreeAggregator",
        *,
        gossip: "GossipNetwork | None" = None,
        nodes: Mapping[int, "IngestNode"] | None = None,
        consistency: str | None = None,
        replica: int | None = None,
        fanout: int = 2,
        gossip_every: int | None = None,
        registry: Any = None,
    ) -> None:
        if consistency is not None and consistency not in READ_CONSISTENCY:
            known = ", ".join(READ_CONSISTENCY)
            raise ParameterError(
                f"unknown consistency {consistency!r}; known: {known}"
            )
        self._aggregator = aggregator
        self._gossip = gossip
        self._nodes = dict(nodes) if nodes is not None else None
        self._simulation: "ClusterSimulation | None" = None
        self._consistency = consistency
        self._replica = replica
        self._fanout = fanout
        self._gossip_every = gossip_every
        self._registry = registry
        #: ``(consistency, replica) -> (stamp, GlobalView)``
        self._cache: dict[tuple[str, int | None], tuple[Any, Any]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    @classmethod
    def from_simulation(
        cls,
        simulation: "ClusterSimulation",
        *,
        consistency: str | None = None,
        replica: int | None = None,
    ) -> "ClusterReader":
        """A reader over a live simulation (topology changes tracked)."""
        config = simulation.config
        reader = cls(
            simulation.aggregator,
            gossip=(
                simulation.gossip
                if config.aggregation == "gossip"
                else None
            ),
            consistency=consistency,
            replica=replica,
            fanout=config.fanout,
            gossip_every=config.gossip_every,
            registry=simulation.telemetry.registry,
        )
        reader._simulation = simulation
        return reader

    # ------------------------------------------------------------------
    # resolution helpers
    # ------------------------------------------------------------------
    @property
    def replicas(self) -> tuple[int, ...]:
        """Node ids replica reads may target (empty without gossip)."""
        if self._gossip is None:
            return ()
        return self._gossip.node_ids

    def _resolve_consistency(self, consistency: str | None) -> str:
        if consistency is None:
            consistency = self._consistency
        if consistency is None:
            consistency = (
                "replica" if self._gossip is not None else "consistent"
            )
        if consistency not in READ_CONSISTENCY:
            known = ", ".join(READ_CONSISTENCY)
            raise ParameterError(
                f"unknown consistency {consistency!r}; known: {known}"
            )
        return consistency

    def _resolve_replica(self, replica: int | None) -> int:
        if self._gossip is None:
            raise ParameterError(
                "replica reads need a gossip network "
                "(aggregation='gossip'); this cluster only supports "
                "consistency='consistent'"
            )
        if replica is None:
            replica = self._replica
        if replica is None:
            participants = self._gossip.node_ids
            if not participants:
                raise ParameterError(
                    "gossip network has no participants to read from"
                )
            replica = participants[0]
        self._gossip.digest(replica)  # loud on unknown replica ids
        return replica

    def _live_nodes(self) -> dict[int, "IngestNode"]:
        if self._simulation is not None:
            return {
                node.node_id: node for node in self._simulation.nodes
            }
        if self._nodes is not None:
            return dict(self._nodes)
        return {
            node.node_id: node for node in self._aggregator.nodes
        }

    def _count(self, endpoint: str, consistency: str) -> None:
        if self._registry is not None:
            self._registry.inc(
                "queries_total",
                endpoint=endpoint,
                consistency=consistency,
            )

    # ------------------------------------------------------------------
    # the cached fold
    # ------------------------------------------------------------------
    def _consistent_stamp(self) -> tuple[Any, ...]:
        """Validity stamp for the consistent path: changes whenever any
        node accepted traffic, flushed differently, reset a window, or
        the topology epoch moved."""
        nodes = self._live_nodes()
        return (
            self._aggregator.epoch,
            tuple(
                (
                    node_id,
                    node.events_ingested,
                    node.pending,
                    len(node.bank),
                )
                for node_id, node in sorted(nodes.items())
            ),
        )

    def raw_view(
        self,
        consistency: str | None = None,
        replica: int | None = None,
    ) -> "GlobalView":
        """The folded ``GlobalView`` itself (cached; for bit-identity
        comparisons and entity-free callers)."""
        consistency = self._resolve_consistency(consistency)
        if consistency == "replica":
            replica = self._resolve_replica(replica)
            assert self._gossip is not None
            view_key = ("replica", replica)
            stamp = self._gossip.read_stamp(replica)
            cached = self._cache.get(view_key)
            if cached is not None and cached[0] == stamp:
                self._note_cache(hit=True)
                return cached[1]
            view = self._gossip.node_view(replica, fanout=self._fanout)
            self._cache[view_key] = (stamp, view)
            self._note_cache(hit=False)
            return view
        view_key = ("consistent", None)
        cached = self._cache.get(view_key)
        if cached is not None and cached[0] == self._consistent_stamp():
            self._note_cache(hit=True)
            return cached[1]
        view = self._aggregator._fold_view()
        # Stamp *after* the fold so the flushed (pending=0) state is
        # what the cache validates against — the next idle read hits.
        self._cache[view_key] = (self._consistent_stamp(), view)
        self._note_cache(hit=False)
        return view

    def _note_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        if self._registry is not None:
            self._registry.inc(
                "query_cache_hits_total"
                if hit
                else "query_cache_misses_total"
            )

    def invalidate(self) -> None:
        """Drop every cached view (stamps re-validate lazily anyway)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # staleness
    # ------------------------------------------------------------------
    def staleness(
        self,
        consistency: str | None = None,
        replica: int | None = None,
    ) -> StalenessInfo:
        """The stamp a query with these parameters would carry."""
        consistency = self._resolve_consistency(consistency)
        if consistency == "replica":
            replica = self._resolve_replica(replica)
            assert self._gossip is not None
            stamp = self._gossip.read_stamp(replica)
            return StalenessInfo(
                consistency="replica",
                replica=replica,
                lag_events=self._gossip.digest_staleness(
                    replica, self._live_nodes()
                ),
                bound_events=self._gossip_every,
                epoch=max(
                    (entry[2] for entry in stamp), default=0
                ),
            )
        return StalenessInfo(
            consistency="consistent",
            replica=None,
            lag_events=0,
            bound_events=self._gossip_every,
            epoch=self._aggregator.epoch,
        )

    # ------------------------------------------------------------------
    # the query API
    # ------------------------------------------------------------------
    def get(
        self,
        key: str,
        consistency: str | None = None,
        replica: int | None = None,
    ) -> KeyCount:
        """One key's count (0 for unseen keys), staleness-stamped."""
        consistency = self._resolve_consistency(consistency)
        self._count("get", consistency)
        view = self.raw_view(consistency, replica)
        return KeyCount.from_view(
            view, key, self.staleness(consistency, replica)
        )

    def top_k(
        self,
        k: int,
        consistency: str | None = None,
        replica: int | None = None,
    ) -> TopK:
        """The ``k`` heaviest keys, heaviest first."""
        consistency = self._resolve_consistency(consistency)
        self._count("top_k", consistency)
        view = self.raw_view(consistency, replica)
        return TopK.from_view(
            view, k, self.staleness(consistency, replica)
        )

    def view(
        self,
        consistency: str | None = None,
        replica: int | None = None,
    ) -> ViewSnapshot:
        """The whole folded view as a typed snapshot."""
        consistency = self._resolve_consistency(consistency)
        self._count("view", consistency)
        view = self.raw_view(consistency, replica)
        return ViewSnapshot.from_view(
            view, self.staleness(consistency, replica)
        )

    def subscribe(
        self,
        keys: Iterable[str] | None = None,
        consistency: str | None = None,
        replica: int | None = None,
    ) -> "Subscription":
        """Incremental count updates (the SSE feed's engine)."""
        consistency = self._resolve_consistency(consistency)
        self._count("subscribe", consistency)
        return Subscription(self, keys, consistency, replica)


class Subscription:
    """Pull-based incremental updates over one reader.

    Each :meth:`poll` folds the current view (through the reader's
    cache) and returns the keys whose estimates changed since the
    previous poll, as staleness-stamped ``KeyCount`` updates in sorted
    key order — deterministic and read-only, so a subscriber never
    perturbs the cluster.  The first poll reports every (tracked) key.
    The HTTP ``/v1/stream`` endpoint drains one of these into
    Server-Sent Events.
    """

    def __init__(
        self,
        reader: ClusterReader,
        keys: Iterable[str] | None,
        consistency: str,
        replica: int | None,
    ) -> None:
        self._reader = reader
        self._keys = tuple(sorted(set(keys))) if keys is not None else None
        self._consistency = consistency
        self._replica = replica
        self._last: dict[str, float] = {}

    @property
    def consistency(self) -> str:
        """The read mode every poll uses."""
        return self._consistency

    def poll(self) -> tuple[KeyCount, ...]:
        """Changed keys since the last poll (all keys on first poll)."""
        view = self._reader.raw_view(self._consistency, self._replica)
        staleness = self._reader.staleness(
            self._consistency, self._replica
        )
        watched = (
            self._keys
            if self._keys is not None
            else tuple(sorted(view.counters))
        )
        updates = []
        for key in watched:
            estimate = view.estimate(key)
            if self._last.get(key) != estimate:
                self._last[key] = estimate
                updates.append(
                    KeyCount.from_view(view, key, staleness)
                )
        return tuple(updates)
