"""Self-healing membership: gossip-driven failure detection.

The simulation driver has always been able to *inject* crashes; until
now it also healed them.  This module is the layer that lets the
cluster notice a dead peer **itself**: every node tracks, per origin,
the gossip round at which the origin's digest entry last refreshed
(:attr:`~repro.cluster.gossip.DigestEntry.round`).  An entry stale
beyond ``suspect_after`` rounds moves that origin to SUSPECT; suspicion
*votes* piggyback on the digest exchanges of each push-pull round; and
a phase-based quorum promotes SUSPECT to CONFIRMED-DEAD, at which point
the simulation runs the existing recover-or-rebalance-away machinery
(see :meth:`~repro.cluster.simulation.ClusterSimulation.gossip_round`).

The quorum loop is the f-of-n phased message-passing shape of
``approximate-consensus-simulation``'s *AlgorithmTwo*: each node keeps,
per suspected origin, a received-set of votes for the current suspicion
*phase*; it accepts (confirms) when the votes reach ``n - f`` — here
the live-node count, i.e. every survivor — and a message carrying a
higher phase makes the receiver jump ahead, adopting the newer phase
and its votes.  Phases quarantine stale episodes: when an origin's
entry refreshes, its suspicion is *refuted* (votes dropped, phase floor
kept), so votes cast before a refutation can never combine with a later
episode's.

Why false confirmation is structurally impossible at the default
quorum: a node never assesses (and therefore never suspects) itself,
so no vote set for origin ``o`` can ever contain ``o``.  While ``o`` is
alive it is a live participant, the needed quorum is the live-node
count *including* ``o``, and the achievable vote count is at most that
minus one.  Only once the simulation actually kills ``o`` does the
participant set — and with it the needed quorum — shrink to the
survivors, all of whom eventually suspect.  Confirmation additionally
rechecks the origin against the network's own refresh table (which,
unlike a digest entry's round stamp, never lags), so a slow-but-alive
node that refreshes within ``suspect_after`` rounds is never confirmed
dead even when it sits out the round in which lagging suspicions reach
a quorum.  An explicit ``membership_quorum`` below the live count
trades the structural guarantee for faster confirmation; the
simulation then simply ignores confirmations of origins that are not,
in fact, dead.

Everything here is deterministic: assessment order is sorted, votes are
sets of node ids merged in sorted exchanges, and the detector runs only
inside the gossip rounds the simulation schedules at exact stream
positions — so serial and parallel runs detect, confirm, and heal at
identical states (the same drain-handshake fence gossip already uses).

>>> view = MembershipView(0)
>>> view.status(1)
'alive'
>>> view.suspect(1)
True
>>> view.status(1), view.phase(1), sorted(view.votes(1))
('suspect', 1, [0])
>>> view.refute(1)
True
>>> view.status(1), view.phase(1)
('alive', 1)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cluster.gossip import GossipNetwork

__all__ = [
    "ALIVE",
    "SUSPECT",
    "CONFIRMED_DEAD",
    "MEMBERSHIP_HEAL_MODES",
    "MembershipView",
    "FailureDetector",
]

#: The suspicion state machine's three states, in escalation order.
ALIVE = "alive"
SUSPECT = "suspect"
CONFIRMED_DEAD = "confirmed-dead"

#: How a confirmed-dead node is healed: ``recover`` replays its durable
#: state into a fresh incarnation, ``rebalance`` migrates its key range
#: to the survivors and retires the id, ``auto`` picks ``recover`` when
#: the store holds any of the node's state (a checkpoint or retained
#: WAL events) and ``rebalance`` otherwise.
MEMBERSHIP_HEAL_MODES: tuple[str, ...] = ("auto", "recover", "rebalance")


class MembershipView:
    """One node's suspicion state machine over every other origin.

    Per origin the view keeps a *phase* (a monotone suspicion-episode
    counter), the set of first-person suspicion *votes* known at that
    phase, and whether the origin has been confirmed dead.  The
    transitions:

    * ``suspect(o)`` — fresh staleness evidence: start a new episode
      (phase + 1) with this node's own vote, or add the vote to the
      current episode;
    * ``refute(o)`` — the origin's entry refreshed: drop the votes and
      any confirmation, keep the phase as a floor so the dead episode's
      votes can never resurrect;
    * ``merge_from(other, o)`` — piggybacked exchange: jump ahead to a
      higher phase (adopting its votes, re-casting our own if we still
      suspect), union votes at an equal phase, and propagate a
      higher-phase refutation.
    """

    def __init__(self, node_id: int) -> None:
        if node_id < 0:
            raise ParameterError(f"node_id must be >= 0, got {node_id}")
        self._node_id = node_id
        self._phase: dict[int, int] = {}
        self._votes: dict[int, set[int]] = {}
        self._confirmed: set[int] = set()

    @property
    def node_id(self) -> int:
        """The node whose suspicions this view holds."""
        return self._node_id

    def phase(self, origin: int) -> int:
        """The origin's current suspicion-episode counter (0 = never)."""
        return self._phase.get(origin, 0)

    def votes(self, origin: int) -> frozenset[int]:
        """The votes known for the origin's current episode."""
        return frozenset(self._votes.get(origin, ()))

    def suspects(self, origin: int) -> bool:
        """Whether this view currently holds suspicion votes for origin."""
        return origin in self._votes

    def status(self, origin: int) -> str:
        """ALIVE, SUSPECT, or CONFIRMED_DEAD, as this view sees it."""
        if origin in self._confirmed:
            return CONFIRMED_DEAD
        if origin in self._votes:
            return SUSPECT
        return ALIVE

    def suspect(self, origin: int) -> bool:
        """First-person staleness evidence; returns True on a new episode."""
        if origin == self._node_id:
            raise ParameterError(
                f"node {origin} cannot suspect itself"
            )
        if origin not in self._votes:
            self._phase[origin] = self._phase.get(origin, 0) + 1
            self._votes[origin] = {self._node_id}
            return True
        self._votes[origin].add(self._node_id)
        return False

    def refute(self, origin: int) -> bool:
        """Fresh-entry evidence the origin is alive; returns True if the
        view actually held suspicion state to drop.  The phase survives
        as a floor: votes from the refuted episode, still circulating in
        other views, can never merge into a later one."""
        had = origin in self._votes or origin in self._confirmed
        self._votes.pop(origin, None)
        self._confirmed.discard(origin)
        return had

    def confirm(self, origin: int) -> None:
        """Mark the origin confirmed dead (quorum reached)."""
        self._confirmed.add(origin)

    def merge_from(self, other: "MembershipView", origin: int) -> bool:
        """Adopt ``other``'s suspicion state for one origin (one way).

        Returns whether this view changed.  The three cases mirror the
        AlgorithmTwo receive loop: jump-ahead on a higher phase, union
        the received set at an equal phase, ignore lower phases.
        """
        other_phase = other.phase(origin)
        own_phase = self.phase(origin)
        if other_phase > own_phase:
            self._phase[origin] = other_phase
            other_votes = other._votes.get(origin)
            if other_votes is not None:
                merged = set(other_votes)
                if origin in self._votes:
                    # We were suspecting at the older phase; staleness
                    # is current first-person evidence, so the vote
                    # re-casts at the adopted phase.
                    merged.add(self._node_id)
                self._votes[origin] = merged
            else:
                # The newer episode was refuted — propagate it.
                self._votes.pop(origin, None)
                self._confirmed.discard(origin)
            return True
        if (
            other_phase == own_phase
            and origin in other._votes
            and origin in self._votes
        ):
            before = len(self._votes[origin])
            self._votes[origin] |= other._votes[origin]
            return len(self._votes[origin]) != before
        return False

    def forget(self, origin: int) -> None:
        """Drop every trace of a retired origin."""
        self._phase.pop(origin, None)
        self._votes.pop(origin, None)
        self._confirmed.discard(origin)

    def drop_voter(self, voter: int) -> None:
        """Withdraw one node's votes everywhere (it was retired)."""
        for votes in self._votes.values():
            votes.discard(voter)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        suspected = {
            origin: sorted(votes)
            for origin, votes in sorted(self._votes.items())
        }
        return (
            f"MembershipView(node={self._node_id}, "
            f"suspected={suspected}, "
            f"confirmed={sorted(self._confirmed)})"
        )


class FailureDetector:
    """Cluster-wide failure detection over per-node membership views.

    One detector attaches to a :class:`~repro.cluster.gossip.
    GossipNetwork` (:meth:`GossipNetwork.attach_detector <repro.cluster.
    gossip.GossipNetwork.attach_detector>`); the network then drives it
    from every *refreshing* push-pull round: :meth:`begin_round` runs
    each live node's staleness assessment, :meth:`observe_exchange`
    piggybacks the suspicion-vote merge on each digest exchange, and the
    simulation drains :meth:`take_confirmed` after the round to heal.
    (Anti-entropy rounds — ``refresh=False`` — carry frozen content and
    deliberately run no detection.)

    Parameters
    ----------
    suspect_after:
        Rounds an origin's entry may go without refreshing before it is
        suspected.
    quorum:
        Votes needed to confirm.  ``None`` (the default) means the live
        participant count of the current round — i.e. ``n - f`` with
        ``f`` dead — which makes false confirmation structurally
        impossible (see the module docstring).
    registry / telemetry:
        Optional :class:`~repro.obs.MetricsRegistry` /
        :class:`~repro.obs.Telemetry` publishing suspicion, refutation,
        and confirmation counters and trace records.  Both are inert:
        the detector's decisions never depend on them.
    """

    def __init__(
        self,
        suspect_after: int = 2,
        quorum: int | None = None,
        registry: Any = None,
        telemetry: Any = None,
    ) -> None:
        if suspect_after < 1:
            raise ParameterError(
                f"suspect_after must be >= 1, got {suspect_after}"
            )
        if quorum is not None and quorum < 1:
            raise ParameterError(
                f"quorum must be >= 1 or None, got {quorum}"
            )
        self._suspect_after = suspect_after
        self._quorum = quorum
        self._registry = registry
        self._telemetry = telemetry
        self._views: dict[int, MembershipView] = {}
        self._live: tuple[int, ...] = ()
        #: Confirmed origins awaiting the simulation's heal pass.
        self._pending: set[int] = set()

    @property
    def suspect_after(self) -> int:
        """Stale rounds tolerated before suspicion."""
        return self._suspect_after

    @property
    def quorum(self) -> int | None:
        """Explicit confirmation quorum (``None`` = live-node count)."""
        return self._quorum

    def needed_votes(self) -> int:
        """Votes required to confirm, for the current round's roster."""
        if self._quorum is not None:
            return self._quorum
        return max(len(self._live), 1)

    def view(self, node_id: int) -> MembershipView:
        """One node's membership view (for white-box assertions)."""
        try:
            return self._views[node_id]
        except KeyError:
            raise ParameterError(
                f"node {node_id} has no membership view "
                f"(known: {sorted(self._views)})"
            ) from None

    def status(self, node_id: int, origin: int) -> str:
        """How ``node_id`` currently classifies ``origin``."""
        return self.view(node_id).status(origin)

    # ------------------------------------------------------------------
    # roster maintenance (forwarded from the gossip network)
    # ------------------------------------------------------------------
    def add_node(self, node_id: int) -> None:
        """A node joined: give it a blank view."""
        self._views.setdefault(node_id, MembershipView(node_id))

    def remove_node(self, node_id: int) -> None:
        """A node retired: drop its view, its votes, and suspicion of it."""
        self._views.pop(node_id, None)
        self._pending.discard(node_id)
        for view in self._views.values():
            view.forget(node_id)
            view.drop_voter(node_id)

    def reset_node(self, node_id: int) -> None:
        """A crash wiped the node's volatile state, its view included."""
        if node_id in self._views:
            self._views[node_id] = MembershipView(node_id)
        self._pending.discard(node_id)

    # ------------------------------------------------------------------
    # round hooks (driven by GossipNetwork.run_round)
    # ------------------------------------------------------------------
    def _staleness(
        self, network: "GossipNetwork", node_id: int, origin: int
    ) -> int:
        """Rounds since ``node_id`` last saw ``origin``'s entry refresh.

        Decentralized when possible — the round stamp on the entry the
        node's own digest holds — with the network's coordinator-side
        refresh table as the fallback for origins the digest has not
        learned yet (the same role the coordinator's version table
        already plays for crash recovery).
        """
        entry = network.digest(node_id).entry(origin)
        last = (
            entry.round
            if entry is not None
            else network.last_refresh_round(origin)
        )
        return network.rounds - last

    def _assess(
        self, network: "GossipNetwork", node_id: int, origin: int
    ) -> None:
        """Suspect or refute one origin from one node's evidence."""
        view = self._views[node_id]
        if self._staleness(network, node_id, origin) > self._suspect_after:
            if view.suspect(origin):
                if self._registry is not None:
                    self._registry.inc("membership_suspicions_total")
                if self._telemetry is not None:
                    self._telemetry.trace(
                        "membership_suspect",
                        node=node_id,
                        origin=origin,
                        phase=view.phase(origin),
                    )
        elif view.refute(origin):
            if self._registry is not None:
                self._registry.inc("membership_refutations_total")

    def _check_confirmed(
        self, network: "GossipNetwork", node_id: int
    ) -> None:
        """Confirm any origin whose votes reached the quorum.

        Confirmation is the irreversible step, so it demands stricter
        evidence than suspicion: besides the quorum of votes (each
        cast from a possibly-lagging digest entry), the origin must be
        stale on the network's own refresh table.  Without this, two
        peers whose digests both lag could suspect a live node and —
        in a round it happens to sit out — reach the shrunken quorum:
        the false-positive bound ("refreshing within ``suspect_after``
        is never confirmed dead") holds because the table never lags.
        """
        view = self._views[node_id]
        needed = self.needed_votes()
        for origin in sorted(view._votes):
            if view.status(origin) == CONFIRMED_DEAD:
                continue
            if (
                network.rounds - network.last_refresh_round(origin)
                <= self._suspect_after
            ):
                continue
            votes = view.votes(origin)
            if len(votes) >= needed:
                view.confirm(origin)
                self._pending.add(origin)
                if self._registry is not None:
                    self._registry.inc("membership_confirmations_total")
                if self._telemetry is not None:
                    self._telemetry.trace(
                        "membership_confirm",
                        node=node_id,
                        origin=origin,
                        phase=view.phase(origin),
                        votes=len(votes),
                    )

    def begin_round(
        self, network: "GossipNetwork", participants: Sequence[int]
    ) -> None:
        """Per-round staleness assessment for every live participant.

        Runs right after the round's digest refreshes: each live node
        classifies every other known origin from the round stamp its
        digest holds.  A single-survivor cluster confirms here (it has
        no peer to exchange votes with).
        """
        self._live = tuple(sorted(participants))
        for node_id in self._live:
            for origin in sorted(network.node_ids):
                if origin != node_id and origin in self._views:
                    self._assess(network, node_id, origin)
            self._check_confirmed(network, node_id)

    def observe_exchange(
        self, network: "GossipNetwork", left: int, right: int
    ) -> None:
        """Piggyback suspicion state on one digest exchange.

        The digests already merged, so both sides first re-assess every
        suspected origin against their (possibly fresher) entries —
        a just-learned refresh refutes before any vote can spread —
        then merge votes and phases both ways and check the quorum.
        """
        left_view = self._views[left]
        right_view = self._views[right]
        suspected = sorted(
            (set(left_view._votes) | set(right_view._votes))
            - {left, right}
        )
        for origin in suspected:
            if origin in self._views:
                self._assess(network, left, origin)
                self._assess(network, right, origin)
        for origin in suspected:
            left_view.merge_from(right_view, origin)
            right_view.merge_from(left_view, origin)
        self._check_confirmed(network, left)
        self._check_confirmed(network, right)

    def confirmed(self) -> tuple[int, ...]:
        """Origins confirmed dead and not yet healed, sorted."""
        return tuple(sorted(self._pending))

    def take_confirmed(self) -> tuple[int, ...]:
        """Drain the confirmed set (the simulation's heal pass)."""
        pending = self.confirmed()
        self._pending.clear()
        return pending

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FailureDetector(suspect_after={self._suspect_after}, "
            f"quorum={self._quorum}, views={sorted(self._views)}, "
            f"pending={sorted(self._pending)})"
        )
