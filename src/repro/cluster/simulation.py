"""Deterministic end-to-end driver for the counting cluster.

The simulation wires the cluster together the way a real deployment would:
a :class:`~repro.cluster.router.ClusterRouter` spreads a
:class:`~repro.stream.workload.KeyedEvent` stream over N
:class:`~repro.cluster.node.IngestNode` machines, nodes coalesce and flush
batches into their banks, periodic :class:`~repro.cluster.checkpoint.
BankCheckpoint` snapshots bound the blast radius of a crash, and a
:class:`~repro.cluster.aggregator.MergeTreeAggregator` produces the global
merged view at the end.

Failure injection and recovery
------------------------------
``ClusterConfig.failures`` schedules crashes at exact stream positions.  A
crash destroys the node's volatile state (bank and write buffer); recovery
restores the last checkpoint (on a fresh incarnation-derived seed, so the
replica does not share coin flips with its dead predecessor) and replays
the *durable log* — the events delivered to the node since that checkpoint,
which the durability layer retains exactly as a real ingest tier would keep
unacknowledged messages in its queue.  Recovery is therefore lossless in
ground truth and fully deterministic: the same config and stream produce
bit-identical final estimates, crashes included.

Durability
----------
All checkpoint and durable-log bookkeeping flows through a pluggable
:class:`~repro.cluster.storage.CheckpointStore`
(``ClusterConfig.storage``): ``"memory"`` keeps everything in process
(the historical behavior), ``"file"`` persists checkpoints, the
write-ahead log, and a topology manifest under ``storage_dir`` so a
simulation can be rebuilt from disk with :func:`recover_cluster`.
``wal_segment_events`` bounds the retained log: the
:class:`~repro.cluster.storage.SegmentedLog` rolls fixed-size segments
and the simulation takes a *forced* fence checkpoint whenever a segment
fills, so replay cost — and retained-log memory — is proportional to the
segment size even with ``checkpoint_every=None``.  The backend never
changes what a run computes: memory- and file-backed runs of the same
config are bit-identical.

Elastic scaling
---------------
``ClusterConfig.scale_events`` schedules topology changes at exact stream
positions: a :class:`ScaleEvent` adds a node (``"add"``) or drains and
removes one (``"remove"``).  Each change advances the router's topology
epoch, computes the key-migration diff
(:func:`~repro.cluster.rebalance.plan_rebalance`), and ships the affected
counters to their new owners as codec-serialized batches
(:func:`~repro.cluster.rebalance.execute_rebalance`) — a pure sequence of
merges, so Remark 2.4 keeps the cluster exact through every resize.
After a migration every live node takes a *fence checkpoint* (and its
durable log truncates), so a later crash can never resurrect
pre-migration state: recovery stays "last checkpoint + log replay" with
no special cases.

Windowed retention
------------------
``ClusterConfig.retention`` bounds long-running state: at each policy
boundary the live banks collapse into an archived window view and every
node restarts empty on a fresh window-derived seed (see
:mod:`repro.cluster.retention`).  The final reported view merges the
retained archive with the live window, so the horizon answer is still
distribution-exact over everything the policy kept.

Parallel ingest
---------------
Delivery is pluggable (:mod:`repro.cluster.pipeline`):
``ClusterConfig.ingest_workers`` selects the execution plan.  The
default (``1``) is the historical serial loop; with more workers the
coordinator thread still routes every event in stream order, but
per-node batches of ``delivery_batch`` events are applied — WAL append
plus buffer submit — by a thread pool, one thread per node at a time.
Checkpoints, migrations, retention collapses, and crashes fence through
a drain handshake, so recovery semantics are untouched and a parallel
run is bit-identical to the serial run at the same seed (a tier-1
invariant, ``tests/cluster/test_pipeline.py``).

Gossip aggregation
------------------
``ClusterConfig.aggregation="gossip"`` adds the decentralized read path
(:mod:`repro.cluster.gossip`): every node keeps an epoch-stamped
partial-view digest, and every ``gossip_every`` delivered events the
simulation runs a push-pull round — each node refreshes its own digest
entry and exchanges digests with ``gossip_fanout`` seeded-random peers.
Rounds are deterministic event-stream entries that fence through the
execution plan's drain handshake (like retention boundaries), so a
parallel gossip run is bit-identical to the serial one.  At end of
stream the digests converge (anti-entropy rounds, counted in the
result); a converged node's :meth:`ClusterSimulation.node_view` equals
the central merge tree's answer bit for bit on ``exact`` templates.

Self-healing membership
-----------------------
``ClusterConfig.membership=True`` (requires gossip aggregation) makes
the cluster survive crashes the driver does *not* heal
(``NodeFailure(heal=False)``): every gossip round also runs the failure
detector (:mod:`repro.cluster.membership`) — staleness assessment over
the digest round stamps, suspicion votes piggybacked on the digest
exchanges, phase-based quorum confirmation — and ends with a heal pass
that recovers (or rebalances away) every origin the round confirmed
dead.  Detection and healing happen only at gossip rounds, which both
execution plans fence through the drain handshake, so a self-healed run
stays bit-identical serial vs parallel, and on ``exact`` templates its
final ``global_view()`` equals the driver-healed reference run's at the
same seed (both are lossless, so both equal ground truth).

Everything except wall-clock throughput metrics is derived from the
config seed, which is what the determinism tests pin down.  At one
stream position the order is fixed: retention boundary, then gossip
round (detection + self-healing included), then scale events, then
crashes, then the event itself.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Iterable

from repro.cluster.aggregator import (
    GlobalView,
    MergeTreeAggregator,
    merge_views,
)
from repro.cluster.checkpoint import BankCheckpoint
from repro.cluster.gossip import AGGREGATION_MODES, GossipNetwork
from repro.cluster.membership import (
    MEMBERSHIP_HEAL_MODES,
    FailureDetector,
)
from repro.cluster.node import CounterTemplate, IngestNode, default_template
from repro.cluster.pipeline import PLAN_NAMES, make_plan
from repro.cluster.rebalance import (
    MigrationBatch,
    absorb_batch,
    execute_rebalance,
    plan_rebalance,
)
from repro.cluster.retention import RetentionPolicy, TumblingRetention
from repro.cluster.router import (
    ROUTING_STRATEGIES,
    ClusterRouter,
    make_strategy,
)
from repro.cluster.storage import (
    STORAGE_BACKENDS,
    CheckpointStore,
    FileStore,
    make_store,
)
from repro.errors import ParameterError, StateError
from repro.experiments.records import TextTable
from repro.obs import Telemetry
from repro.rng.splitmix import derive_seed
from repro.stream.workload import KeyedEvent

__all__ = [
    "NodeFailure",
    "ScaleEvent",
    "ClusterConfig",
    "NodeStats",
    "SimulationResult",
    "ClusterSimulation",
    "node_seed",
    "recover_cluster",
]

_NODE_SEED_KEY = 0x6E6F6465  # "node"
_ROUTER_SEED_KEY = 0x726F7574  # "rout"


def node_seed(
    config_seed: int, node_id: int, incarnation: int = 0
) -> int:
    """The bank seed of ``node_id`` at ``incarnation``.

    The one derivation every deployment mode shares: in-process nodes
    (:meth:`ClusterSimulation._fresh_node`), crash recovery
    (incarnation bumps), and ``cluster serve`` worker daemons
    (:mod:`repro.cluster.serve`) all seed their banks here, which is
    what lets state captured in one mode be adopted in another.
    """
    return derive_seed(config_seed, _NODE_SEED_KEY, node_id, incarnation)

#: Wall-clock floor: a sub-nanosecond elapsed time (possible when a tiny
#: run lands inside one ``perf_counter`` tick) would otherwise make
#: ``events_per_sec`` infinite — which is both meaningless and invalid
#: strict JSON when benchmarks serialize it.
_MIN_ELAPSED_S = 1e-9


@dataclass(frozen=True, slots=True)
class NodeFailure:
    """Crash ``node_id`` just before stream position ``at_event``.

    With ``heal=True`` (the historical behavior) the driver recovers
    the node immediately — crash and recovery are one stream entry.
    ``heal=False`` is the fault-injection mode for self-healing
    membership (:mod:`repro.cluster.membership`): the driver only
    *kills* the node, and the cluster itself must notice the silence,
    confirm the death by quorum, and run recovery — it requires
    ``ClusterConfig.membership=True``.
    """

    at_event: int
    node_id: int
    heal: bool = True

    def __post_init__(self) -> None:
        if self.at_event < 0:
            raise ParameterError(
                f"at_event must be non-negative, got {self.at_event}"
            )
        if self.node_id < 0:
            raise ParameterError(
                f"node_id must be non-negative, got {self.node_id}"
            )


@dataclass(frozen=True, slots=True)
class ScaleEvent:
    """One topology change, just before stream position ``at_event``.

    ``action="add"`` brings up a new ingest node (``node_id`` picks its
    id; ``None`` auto-assigns ``max(live ids) + 1``).  ``action="remove"``
    drains ``node_id`` (required) into the surviving nodes and retires
    it.  Both trigger an incremental key migration — see
    :mod:`repro.cluster.rebalance`.

    >>> ScaleEvent(at_event=1000, action="add")
    ScaleEvent(at_event=1000, action='add', node_id=None)
    >>> ScaleEvent(at_event=0, action="remove")
    Traceback (most recent call last):
        ...
    repro.errors.ParameterError: remove needs an explicit node_id
    """

    at_event: int
    action: str
    node_id: int | None = None

    def __post_init__(self) -> None:
        if self.at_event < 0:
            raise ParameterError(
                f"at_event must be non-negative, got {self.at_event}"
            )
        if self.action not in ("add", "remove"):
            raise ParameterError(
                f"action must be 'add' or 'remove', got {self.action!r}"
            )
        if self.action == "remove" and self.node_id is None:
            raise ParameterError("remove needs an explicit node_id")
        if self.node_id is not None and self.node_id < 0:
            raise ParameterError(
                f"node_id must be non-negative, got {self.node_id}"
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of one simulated deployment.

    ``routing`` picks the placement strategy (``"hash"`` = salted stable
    hash with per-epoch salt regeneration, ``"ring"`` = consistent hash
    ring with ``ring_points`` virtual nodes — minimal key movement per
    resize).  ``scale_events`` and ``retention`` drive elasticity and
    windowed retention; both default off, reproducing the frozen
    topology of earlier versions bit for bit.

    ``storage`` picks the durability backend (``"memory"`` in-process,
    ``"file"`` persisted under ``storage_dir`` — see
    :mod:`repro.cluster.storage`); ``wal_segment_events`` bounds the
    retained durable log per node (a filled segment forces a fence
    checkpoint), and ``traffic_table_limit`` bounds the router's hot-key
    auto-detection table.

    ``plan`` names the execution plan explicitly (see
    :mod:`repro.cluster.pipeline`): ``"serial"``, ``"parallel"``
    (thread pool), or ``"process"`` (one OS worker process per node
    behind the checksummed wire protocol).  The default ``"auto"``
    keeps the historical rule — serial at ``ingest_workers=1``,
    parallel above — where ``ingest_workers`` shards delivery over a
    thread pool in ``delivery_batch``-event batches.  Results are
    bit-identical across plans on exact templates.
    ``wal_fsync_every`` turns on group-commit fsync for file-backed
    WAL appends (the memory backend has no files and ignores it).

    ``aggregation`` picks the read path: ``"tree"`` (the central merge
    tree, historical behavior) or ``"gossip"`` (every node additionally
    keeps an epoch-stamped partial-view digest and exchanges it with
    ``gossip_fanout`` seeded-random peers every ``gossip_every``
    delivered events — see :mod:`repro.cluster.gossip`).
    ``gossip_every=None`` with gossip aggregation schedules no
    in-stream rounds; the run still converges the digests after the
    stream so every node's local read equals the central answer.

    ``membership=True`` (requires gossip aggregation) turns on
    self-healing membership (:mod:`repro.cluster.membership`): every
    gossip round also runs failure detection — an origin whose digest
    entry goes more than ``suspect_after`` rounds without refreshing is
    suspected, suspicion votes piggyback on the digest exchanges, and
    ``membership_quorum`` votes (default: every live node) confirm the
    death, at which point the cluster heals it per ``membership_heal``
    (``auto``/``recover``/``rebalance``).  This is what makes
    ``NodeFailure(heal=False)`` kills survivable without driver help.
    """

    n_nodes: int = 4
    template: CounterTemplate = field(default_factory=default_template)
    seed: int = 0
    buffer_limit: int = 512
    checkpoint_every: int | None = 50_000
    hot_keys: tuple[str, ...] = ()
    hot_key_threshold: int | None = None
    failures: tuple[NodeFailure, ...] = ()
    track_truth: bool = True
    fanout: int = 2
    routing: str = "hash"
    ring_points: int = 64
    scale_events: tuple[ScaleEvent, ...] = ()
    retention: RetentionPolicy | None = None
    storage: str = "memory"
    storage_dir: str | None = None
    storage_overwrite: bool = False
    wal_segment_events: int | None = None
    traffic_table_limit: int | None = 4096
    ingest_workers: int = 1
    delivery_batch: int = 64
    wal_fsync_every: int | None = None
    plan: str = "auto"
    aggregation: str = "tree"
    gossip_fanout: int = 1
    gossip_every: int | None = None
    membership: bool = False
    suspect_after: int = 2
    membership_quorum: int | None = None
    membership_heal: str = "auto"
    consume_mode: str = "skip_ahead"

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ParameterError(
                f"n_nodes must be >= 1, got {self.n_nodes}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ParameterError(
                "checkpoint_every must be >= 1 or None, "
                f"got {self.checkpoint_every}"
            )
        if self.routing not in ROUTING_STRATEGIES:
            known = ", ".join(sorted(ROUTING_STRATEGIES))
            raise ParameterError(
                f"routing must be one of {known}, got {self.routing!r}"
            )
        if self.ring_points < 1:
            raise ParameterError(
                f"ring_points must be >= 1, got {self.ring_points}"
            )
        if self.storage not in STORAGE_BACKENDS:
            known = ", ".join(STORAGE_BACKENDS)
            raise ParameterError(
                f"storage must be one of {known}, got {self.storage!r}"
            )
        if self.storage == "file" and self.storage_dir is None:
            raise ParameterError(
                "storage='file' needs a storage_dir"
            )
        if (
            self.wal_segment_events is not None
            and self.wal_segment_events < 1
        ):
            raise ParameterError(
                "wal_segment_events must be >= 1 or None, "
                f"got {self.wal_segment_events}"
            )
        if (
            self.traffic_table_limit is not None
            and self.traffic_table_limit < 1
        ):
            raise ParameterError(
                "traffic_table_limit must be >= 1 or None, "
                f"got {self.traffic_table_limit}"
            )
        if self.ingest_workers < 1:
            raise ParameterError(
                f"ingest_workers must be >= 1, got {self.ingest_workers}"
            )
        if self.delivery_batch < 1:
            raise ParameterError(
                f"delivery_batch must be >= 1, got {self.delivery_batch}"
            )
        if self.wal_fsync_every is not None and self.wal_fsync_every < 1:
            raise ParameterError(
                "wal_fsync_every must be >= 1 or None, "
                f"got {self.wal_fsync_every}"
            )
        if self.plan != "auto" and self.plan not in PLAN_NAMES:
            known = ", ".join(("auto", *PLAN_NAMES))
            raise ParameterError(
                f"plan must be one of {known}, got {self.plan!r}"
            )
        if self.plan == "serial" and self.ingest_workers > 1:
            raise ParameterError(
                "plan='serial' is the single-threaded loop; "
                f"ingest_workers={self.ingest_workers} would be "
                "silently ignored (use plan='parallel' or 'auto')"
            )
        if self.plan == "process":
            if self.ingest_workers > 1:
                raise ParameterError(
                    "plan='process' runs one OS process per node; "
                    "ingest_workers does not apply (leave it at 1)"
                )
            if self.aggregation == "gossip":
                raise ParameterError(
                    "plan='process' does not support "
                    "aggregation='gossip' yet: gossip rounds exchange "
                    "digests between in-process node objects"
                )
        if self.aggregation not in AGGREGATION_MODES:
            known = ", ".join(AGGREGATION_MODES)
            raise ParameterError(
                f"aggregation must be one of {known}, "
                f"got {self.aggregation!r}"
            )
        if self.gossip_fanout < 1:
            raise ParameterError(
                f"gossip_fanout must be >= 1, got {self.gossip_fanout}"
            )
        if self.gossip_every is not None and self.gossip_every < 1:
            raise ParameterError(
                "gossip_every must be >= 1 or None, "
                f"got {self.gossip_every}"
            )
        if self.aggregation != "gossip":
            # Gossip knobs on a tree cluster would be silently ignored;
            # refuse them so a forgotten aggregation switch is loud.
            if self.gossip_every is not None:
                raise ParameterError(
                    "gossip_every requires aggregation='gossip'"
                )
            if self.gossip_fanout != 1:
                raise ParameterError(
                    "gossip_fanout requires aggregation='gossip'"
                )
        if self.suspect_after < 1:
            raise ParameterError(
                f"suspect_after must be >= 1, got {self.suspect_after}"
            )
        if self.membership_quorum is not None and self.membership_quorum < 1:
            raise ParameterError(
                "membership_quorum must be >= 1 or None, "
                f"got {self.membership_quorum}"
            )
        if self.membership_heal not in MEMBERSHIP_HEAL_MODES:
            known = ", ".join(MEMBERSHIP_HEAL_MODES)
            raise ParameterError(
                f"membership_heal must be one of {known}, "
                f"got {self.membership_heal!r}"
            )
        if self.consume_mode not in IngestNode.CONSUME_MODES:
            known = ", ".join(IngestNode.CONSUME_MODES)
            raise ParameterError(
                f"consume_mode must be one of {known}, "
                f"got {self.consume_mode!r}"
            )
        if self.membership and self.aggregation != "gossip":
            # Detection feeds on digest round stamps; without gossip
            # there is nothing to detect from.
            raise ParameterError(
                "membership=True requires aggregation='gossip'"
            )
        if not self.membership:
            # Same loudness rule as the gossip knobs: membership tuning
            # on a cluster that runs no detection is a silent no-op.
            if self.suspect_after != 2:
                raise ParameterError(
                    "suspect_after requires membership=True"
                )
            if self.membership_quorum is not None:
                raise ParameterError(
                    "membership_quorum requires membership=True"
                )
            if self.membership_heal != "auto":
                raise ParameterError(
                    "membership_heal requires membership=True"
                )
            for failure in self.failures:
                if not failure.heal:
                    raise ParameterError(
                        f"failure at event {failure.at_event} has "
                        "heal=False, which requires membership=True "
                        "(nothing else would ever recover the node)"
                    )
        self._validate_schedule()

    def _validate_schedule(self) -> None:
        """Fail fast on impossible failure/scale targets.

        Replays the scheduled topology changes the way the simulation
        will (scale events before failures at the same position, listed
        order within a position, monotone auto ids), so a typo'd node id
        raises :class:`~repro.errors.ParameterError` at construction
        instead of aborting mid-run.
        """
        # kind 0 = scale, 1 = failure: matches the event-loop ordering.
        schedule = sorted(
            [
                (scale.at_event, 0, index, scale)
                for index, scale in enumerate(self.scale_events)
            ]
            + [
                (failure.at_event, 1, index, failure)
                for index, failure in enumerate(self.failures)
            ]
        )
        live = set(range(self.n_nodes))
        # Nodes killed with heal=False stay dead until membership heals
        # them — a gossip-round-timed action the replay cannot place —
        # so the checks below are conservative: a killed node is treated
        # as dead for the rest of the schedule.
        dead: set[int] = set()
        next_auto = self.n_nodes
        for at_event, kind, _, action in schedule:
            if kind == 1:
                if action.node_id not in live:
                    raise ParameterError(
                        f"failure at event {at_event} targets node "
                        f"{action.node_id}, which is not live there "
                        f"(live: {sorted(live)})"
                    )
                if action.node_id in dead:
                    raise ParameterError(
                        f"failure at event {at_event} targets node "
                        f"{action.node_id}, which an earlier heal=False "
                        "kill may have left dead there"
                    )
                if not action.heal:
                    dead.add(action.node_id)
                    if len(live) - len(dead) < 1:
                        raise ParameterError(
                            f"kill at event {at_event} would leave no "
                            "live survivor to detect it"
                        )
            elif action.action == "add":
                node_id = (
                    action.node_id if action.node_id is not None
                    else next_auto
                )
                if node_id in live:
                    raise ParameterError(
                        f"scale event at event {at_event} adds node "
                        f"{node_id}, which is already live"
                    )
                live.add(node_id)
                next_auto = max(next_auto, node_id + 1)
                dead.clear()
            else:
                if action.node_id not in live:
                    raise ParameterError(
                        f"scale event at event {at_event} removes node "
                        f"{action.node_id}, which is not live there "
                        f"(live: {sorted(live)})"
                    )
                if len(live) == 1:
                    raise ParameterError(
                        f"scale event at event {at_event} would remove "
                        "the last node"
                    )
                live.remove(action.node_id)
                # A scale event force-heals every dead node first (a
                # topology change is a full-cluster coordination point),
                # so from here the replay may treat them as live again.
                dead.clear()

    # ------------------------------------------------------------------
    # the one audited flag → config path
    # ------------------------------------------------------------------
    @classmethod
    def validate(
        cls, args: Any
    ) -> tuple[
        tuple["NodeFailure", ...],
        tuple["ScaleEvent", ...],
        RetentionPolicy | None,
        int | None,
    ]:
        """Cross-flag validation for a ``cluster`` argparse namespace.

        Checks every flag interaction the CLI refuses (``--kill``
        specs, membership prerequisites, retention/storage/telemetry
        pairings, gossip knobs) and raises
        :class:`~repro.errors.ParameterError` carrying *exactly* the
        CLI's historical error text, so ``cli.py`` can surface it
        verbatim via ``SystemExit``.  Returns the parsed schedule
        pieces ``(failures, scale_events, retention, gossip_every)``
        for :meth:`from_args` to assemble.

        ``args`` is duck-typed: anything exposing the ``cluster``
        subparser's attribute set works (the HTTP layer and tests pass
        plain namespaces).
        """
        failures = []
        for spec in args.kill:
            try:
                node_part, event_part = spec.split("@", 1)
                node_id, at_event = int(node_part), int(event_part)
            except ValueError:
                raise ParameterError(
                    f"--kill expects NODE@EVENT (e.g. 2@100000), "
                    f"got {spec!r}"
                ) from None
            try:
                failures.append(
                    NodeFailure(at_event=at_event, node_id=node_id)
                )
            except ParameterError as exc:
                raise ParameterError(
                    f"invalid --kill {spec!r}: {exc}"
                ) from exc
        for spec in args.kill_dead:
            try:
                node_part, event_part = spec.split("@", 1)
                node_id, at_event = int(node_part), int(event_part)
            except ValueError:
                raise ParameterError(
                    f"--kill-dead expects NODE@EVENT (e.g. 2@100000), "
                    f"got {spec!r}"
                ) from None
            try:
                failures.append(
                    NodeFailure(
                        at_event=at_event, node_id=node_id, heal=False
                    )
                )
            except ParameterError as exc:
                raise ParameterError(
                    f"invalid --kill-dead {spec!r}: {exc}"
                ) from exc
        scale_events = []
        for at_event in args.grow:
            try:
                scale_events.append(
                    ScaleEvent(at_event=at_event, action="add")
                )
            except ParameterError as exc:
                raise ParameterError(
                    f"invalid --grow {at_event!r}: {exc}"
                ) from exc
        for spec in args.shrink:
            try:
                node_part, event_part = spec.split("@", 1)
                node_id, at_event = int(node_part), int(event_part)
            except ValueError:
                raise ParameterError(
                    f"--shrink expects NODE@EVENT (e.g. 1@600000), "
                    f"got {spec!r}"
                ) from None
            try:
                scale_events.append(
                    ScaleEvent(
                        at_event=at_event,
                        action="remove",
                        node_id=node_id,
                    )
                )
            except ParameterError as exc:
                raise ParameterError(
                    f"invalid --shrink {spec!r}: {exc}"
                ) from exc
        for failure in failures:
            if failure.at_event >= args.events:
                raise ParameterError(
                    f"--kill at event {failure.at_event} is past the "
                    f"end of the stream ({args.events} events); it "
                    "would never fire"
                )
        if args.membership and args.aggregation != "gossip":
            raise ParameterError(
                "--membership requires --aggregation gossip"
            )
        if not args.membership:
            if args.kill_dead:
                raise ParameterError(
                    "--kill-dead requires --membership"
                )
            if args.suspect_after != 2:
                raise ParameterError(
                    "--suspect-after requires --membership"
                )
            if args.membership_quorum is not None:
                raise ParameterError(
                    "--membership-quorum requires --membership"
                )
            if args.membership_heal != "auto":
                raise ParameterError(
                    "--membership-heal requires --membership"
                )
        for scale in scale_events:
            if scale.at_event >= args.events:
                raise ParameterError(
                    f"--grow/--shrink at event {scale.at_event} is "
                    f"past the end of the stream ({args.events} "
                    "events); it would never fire"
                )
        retention = None
        if args.window_every is not None:
            try:
                retention = TumblingRetention(
                    window_events=args.window_every,
                    keep_windows=args.retain,
                )
            except ParameterError as exc:
                raise ParameterError(
                    f"invalid retention policy: {exc}"
                ) from exc
        elif args.retain is not None:
            raise ParameterError("--retain requires --window-every")
        if args.storage == "file" and args.storage_dir is None:
            raise ParameterError("--storage file requires --storage-dir")
        if args.storage_dir is not None and args.storage != "file":
            raise ParameterError("--storage-dir requires --storage file")
        if args.storage_overwrite and args.storage != "file":
            raise ParameterError(
                "--storage-overwrite requires --storage file"
            )
        if args.wal_fsync is not None and args.storage != "file":
            raise ParameterError("--wal-fsync requires --storage file")
        if args.no_telemetry and args.metrics_out is not None:
            raise ParameterError(
                "--metrics-out needs the telemetry layers; "
                "drop --no-telemetry"
            )
        if args.no_telemetry and args.trace_out is not None:
            raise ParameterError(
                "--trace-out needs the telemetry layers; "
                "drop --no-telemetry"
            )
        if args.aggregation != "gossip":
            if args.gossip_every is not None:
                raise ParameterError(
                    "--gossip-every requires --aggregation gossip"
                )
            if args.gossip_fanout != 1:
                raise ParameterError(
                    "--gossip-fanout requires --aggregation gossip"
                )
            gossip_every = None
        else:
            gossip_every = (
                args.gossip_every
                if args.gossip_every is not None
                else max(args.events // 8, 1)
            )
        return (
            tuple(sorted(failures, key=lambda f: f.at_event)),
            tuple(sorted(scale_events, key=lambda s: s.at_event)),
            retention,
            gossip_every,
        )

    @classmethod
    def from_args(cls, args: Any) -> "ClusterConfig":
        """Build the config every frontend shares, from CLI-shaped args.

        The CLI, the HTTP serving layer, the serve daemons, and tests
        all construct :class:`ClusterConfig` through this one audited
        path: :meth:`validate` first (flag-interaction errors with the
        CLI's exact text), then dataclass construction (field errors
        wrapped as ``invalid cluster configuration: ...``, also the
        CLI's historical text).  Raises
        :class:`~repro.errors.ParameterError` in both cases.
        """
        failures, scale_events, retention, gossip_every = cls.validate(
            args
        )
        try:
            return cls(
                n_nodes=args.nodes,
                template=default_template(args.algorithm),
                seed=args.seed,
                buffer_limit=args.buffer,
                checkpoint_every=args.checkpoint_every or None,
                hot_key_threshold=args.hot_threshold,
                failures=failures,
                routing=args.routing,
                ring_points=args.ring_points,
                scale_events=scale_events,
                retention=retention,
                storage=args.storage,
                storage_dir=args.storage_dir,
                storage_overwrite=args.storage_overwrite,
                wal_segment_events=args.wal_segment,
                ingest_workers=args.workers,
                delivery_batch=args.batch,
                wal_fsync_every=args.wal_fsync,
                plan=args.plan,
                aggregation=args.aggregation,
                gossip_fanout=args.gossip_fanout,
                gossip_every=gossip_every,
                membership=args.membership,
                suspect_after=args.suspect_after,
                membership_quorum=args.membership_quorum,
                membership_heal=args.membership_heal,
            )
        except ParameterError as exc:
            raise ParameterError(
                f"invalid cluster configuration: {exc}"
            ) from exc


@dataclass(frozen=True, slots=True)
class NodeStats:
    """Per-node accounting at the end of a run.

    ``retired`` marks nodes that were scaled out mid-run; their lifetime
    counts stay in the result so every delivered event remains accounted
    for exactly once.
    """

    node_id: int
    events: int
    keys: int
    flushes: int
    checkpoints: int
    recoveries: int
    state_bits: int
    retired: bool = False


@dataclass(frozen=True)
class SimulationResult:
    """Everything a run produced, ready for tables and JSON.

    ``elapsed_s`` and ``events_per_sec`` are wall-clock measurements and
    the only non-deterministic fields; everything else is a pure function
    of the config and the event stream.  ``n_nodes`` is the *final* live
    node count (equal to the configured count unless scale events ran).
    """

    n_nodes: int
    total_events: int
    n_keys: int
    hot_keys: int
    merge_rounds: int
    total_state_bits: int
    node_stats: tuple[NodeStats, ...]
    top: tuple[tuple[str, float, int | None], ...]
    mean_relative_error: float | None
    rms_relative_error: float | None
    max_relative_error: float | None
    elapsed_s: float
    events_per_sec: float
    epoch: int = 0
    scale_events_applied: int = 0
    keys_migrated: int = 0
    migration_batches: int = 0
    migration_bytes: int = 0
    windows_collapsed: int = 0
    windows_retained: int = 0
    storage_bytes: int = 0
    gossip_rounds: int = 0
    gossip_convergence_rounds: int = 0
    gossip_max_staleness: int | None = None
    membership_kills: int = 0
    membership_suspicions: int = 0
    membership_confirmations: int = 0
    membership_heals: int = 0
    membership_detection_rounds: int = 0

    @property
    def recoveries(self) -> int:
        """Total node recoveries across the run."""
        return sum(s.recoveries for s in self.node_stats)

    @property
    def checkpoints(self) -> int:
        """Total checkpoints taken across the run."""
        return sum(s.checkpoints for s in self.node_stats)

    def table(self) -> str:
        """Render the per-node table, top keys, and global summary."""
        nodes = TextTable(
            [
                "node",
                "events",
                "keys",
                "flushes",
                "ckpts",
                "recoveries",
                "state bits",
            ]
        )
        for s in self.node_stats:
            nodes.add_row(
                f"node-{s.node_id}" + (" (retired)" if s.retired else ""),
                f"{s.events:,}",
                f"{s.keys:,}",
                f"{s.flushes:,}",
                str(s.checkpoints),
                str(s.recoveries),
                f"{s.state_bits:,}",
            )
        lines = [nodes.render()]
        if self.top:
            top = TextTable(["top key", "estimate", "truth", "rel. error"])
            for key, estimate, truth in self.top:
                if truth is None or truth == 0:
                    top.add_row(key, f"{estimate:,.0f}", "-", "-")
                else:
                    top.add_row(
                        key,
                        f"{estimate:,.0f}",
                        f"{truth:,}",
                        f"{100 * abs(estimate - truth) / truth:.3f}%",
                    )
            lines.append("")
            lines.append(top.render())
        lines.append("")
        lines.append(
            f"{self.n_nodes} nodes, {self.total_events:,} events over "
            f"{self.n_keys:,} keys ({self.hot_keys} split hot), "
            f"merge depth {self.merge_rounds}"
        )
        lines.append(
            f"throughput {self.events_per_sec:,.0f} events/s "
            f"({self.elapsed_s:.2f} s); merged view "
            f"{self.total_state_bits:,} state bits"
        )
        if self.scale_events_applied:
            lines.append(
                f"{self.scale_events_applied} scale events "
                f"(topology epoch {self.epoch}): {self.keys_migrated:,} "
                f"keys migrated in {self.migration_batches} batches "
                f"({self.migration_bytes:,} wire bytes)"
            )
        if self.windows_collapsed:
            lines.append(
                f"retention: {self.windows_collapsed} windows collapsed, "
                f"{self.windows_retained} retained in the horizon view"
            )
        if self.gossip_rounds:
            staleness = (
                f"{self.gossip_max_staleness:,}"
                if self.gossip_max_staleness is not None
                else "untracked"
            )
            lines.append(
                f"gossip: {self.gossip_rounds} push-pull rounds "
                f"({self.gossip_convergence_rounds} to converge after "
                f"the stream); max staleness {staleness} events"
            )
        if self.membership_heals or self.membership_kills:
            lines.append(
                f"membership: {self.membership_kills} kills detected via "
                f"{self.membership_suspicions} suspicions and "
                f"{self.membership_confirmations} quorum confirmations, "
                f"{self.membership_heals} self-heals (worst detection "
                f"{self.membership_detection_rounds} gossip rounds)"
            )
        if self.rms_relative_error is not None:
            lines.append(
                f"global error vs truth: mean "
                f"{100 * self.mean_relative_error:.3f}%  rms "
                f"{100 * self.rms_relative_error:.3f}%  max "
                f"{100 * self.max_relative_error:.3f}%"
            )
        if self.recoveries:
            lines.append(
                f"{self.recoveries} node recoveries from "
                f"{self.checkpoints} checkpoints (durable-log replay)"
            )
        if self.storage_bytes:
            lines.append(
                f"durability: {self.storage_bytes:,} bytes retained "
                "(checkpoints + write-ahead log)"
            )
        return "\n".join(lines)


class ClusterSimulation:
    """Event-loop driver over a configured cluster.

    One instance drives one run; :meth:`run` may be called once per
    event stream.  All cluster components are reachable (``nodes``,
    ``router``, ``aggregator``, ``store``) for white-box assertions, and
    the elastic operations (:meth:`scale_up`, :meth:`scale_down`,
    :meth:`crash_node`, :meth:`collapse_window`) are public so tests
    and notebooks can drive topology changes by hand.

    ``store`` injects a prebuilt :class:`~repro.cluster.storage.
    CheckpointStore` (defaults to one built from the config);
    ``resume=True`` rebuilds the simulation from the store's persisted
    state instead of starting fresh — use :func:`recover_cluster` rather
    than passing it directly.

    ``telemetry`` injects a :class:`~repro.obs.Telemetry` facade
    (defaults to a fully-enabled one with a null trace sink).  All
    run statistics — per-node checkpoint/recovery counts, migration
    totals, retention counts — live in its
    :class:`~repro.obs.MetricsRegistry`; the registry's deterministic
    counters are always on and round-trip through the manifest, so
    they survive :func:`recover_cluster` monotonically.  Only the
    wall-clock layers (stage timers, duration histograms, trace
    records) honor ``Telemetry.enabled``, and none of it ever changes
    what a run computes (the inertness contract, pinned in
    ``tests/cluster/test_properties.py``).
    """

    def __init__(
        self,
        config: ClusterConfig,
        store: CheckpointStore | None = None,
        resume: bool = False,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._config = config
        self._telemetry = (
            telemetry if telemetry is not None else Telemetry()
        )
        self._metrics = self._telemetry.registry
        #: events delivered so far — the stream position stamped into
        #: trace records (coordinator thread only).
        self._stream_position = 0
        self._store = (
            store
            if store is not None
            else make_store(
                config.storage,
                wal_segment_events=config.wal_segment_events,
                directory=config.storage_dir,
                overwrite=config.storage_overwrite,
                wal_fsync_every=config.wal_fsync_every,
            )
        )
        self._store.attach_telemetry(self._telemetry)
        self._archived: deque[GlobalView] = deque(
            maxlen=(
                config.retention.retained_windows
                if config.retention is not None
                else None
            )
        )
        #: currently-dead node ids; populated by :meth:`kill_node`, reset
        #: by :meth:`_fresh_membership`.  Initialized before the resume
        #: branch because ``_restore`` checkpoints nodes (which consults
        #: this set) before it rebuilds the membership layer.
        self._dead: set[int] = set()
        #: Optional checkpoint-capture delegate installed by an
        #: execution plan: ``(node_id, meta, topology) -> encoded
        #: checkpoint line``.  The process plan points it at the node's
        #: worker subprocess (which flushes, fills in the lifetime
        #: stats, and captures its live bank); ``None`` means the
        #: serial in-process path.  Durable bookkeeping — save, WAL
        #: fence, manifest — always stays here in the coordinator.
        self._checkpoint_capture: (
            Callable[[int, dict[str, Any], dict[str, Any]], str] | None
        ) = None
        #: Optional migration-batch observer: called with each encoded
        #: :class:`~repro.cluster.rebalance.MigrationBatch` line after
        #: it is journaled and before the in-process absorb.  The
        #: process plan uses it to ship the move to the worker fleet in
        #: lockstep with the coordinator's mirrors.
        self._migration_observer: Callable[[str], None] | None = None
        #: Lazily-bound ``(route, deliver, bank_consume)`` stage-timer
        #: cells for the serial delivery loop — resolved once on the
        #: delivering (coordinator) thread so the per-event timed path
        #: pays inline float ops, not a timer lookup per event.
        self._stage_cells: tuple[list[float], ...] | None = None
        if resume:
            self._restore(self._store.load())
            return
        self._store.initialize()
        self._router = self._fresh_router(range(config.n_nodes))
        self._nodes: dict[int, IngestNode] = {
            node_id: self._fresh_node(node_id, incarnation=0)
            for node_id in range(config.n_nodes)
        }
        self._aggregator = MergeTreeAggregator(
            self._ordered_nodes(), fanout=config.fanout
        )
        self._since_checkpoint: dict[int, int] = {}
        #: node id -> incarnation counter; never forgets retired ids, so
        #: a re-added id can never replay a predecessor's RNG streams.
        self._incarnation: dict[int, int] = {}
        self._stats_base: dict[int, tuple[int, int]] = {}
        for node_id in self._nodes:
            self._init_bookkeeping(node_id)
            self._incarnation[node_id] = 0
        #: next auto-assigned node id; monotone over ids ever used, so
        #: scale-up after scale-down does not resurrect a retired id.
        self._next_auto_id = config.n_nodes
        self._retired: list[NodeStats] = []
        self._window = 0
        self._mid_migration = False
        self._gossip = self._fresh_gossip()
        if self._gossip is not None:
            for node_id in sorted(self._nodes):
                self._gossip.add_node(node_id)
        self._gossip_convergence_rounds = 0
        self._gossip_max_staleness: int | None = None
        self._membership = self._fresh_membership()
        self._sync_manifest()

    def _fresh_gossip(self) -> GossipNetwork | None:
        """The gossip layer the config asks for (``None`` for tree)."""
        config = self._config
        if config.aggregation != "gossip":
            return None
        return GossipNetwork(
            seed=config.seed,
            fanout=config.gossip_fanout,
            registry=self._metrics,
        )

    def _fresh_membership(self) -> FailureDetector | None:
        """Attach a failure detector when the config asks for one.

        Also (re-)initializes the kill bookkeeping: the set of
        currently-dead node ids and the per-node kill-round stamps the
        detection-latency accounting reads.
        """
        self._dead: set[int] = set()
        self._kill_rounds: dict[int, int] = {}
        self._membership_detection_rounds: dict[int, int] = {}
        config = self._config
        if not config.membership:
            return None
        assert self._gossip is not None  # enforced by ClusterConfig
        detector = FailureDetector(
            suspect_after=config.suspect_after,
            quorum=config.membership_quorum,
            registry=self._metrics,
            telemetry=self._telemetry,
        )
        self._gossip.attach_detector(detector)
        return detector

    def _fresh_router(self, node_ids: Iterable[int]) -> ClusterRouter:
        config = self._config
        strategy_params: dict[str, Any] = (
            {"points_per_node": config.ring_points}
            if config.routing == "ring"
            else {}
        )
        return ClusterRouter(
            node_ids,
            strategy=make_strategy(config.routing, **strategy_params),
            hot_keys=config.hot_keys,
            hot_key_threshold=config.hot_key_threshold,
            salt=derive_seed(config.seed, _ROUTER_SEED_KEY),
            traffic_table_limit=config.traffic_table_limit,
            registry=self._metrics,
        )

    def _fresh_node(self, node_id: int, incarnation: int) -> IngestNode:
        config = self._config
        return IngestNode(
            node_id,
            config.template,
            seed=node_seed(config.seed, node_id, incarnation),
            buffer_limit=config.buffer_limit,
            track_truth=config.track_truth,
            consume_mode=config.consume_mode,
        )

    def _init_bookkeeping(self, node_id: int) -> None:
        # Incarnation is deliberately not reset here: it outlives a
        # node's tenure so reused ids get fresh seeds.  Checkpoint and
        # recovery counts live in the metrics registry, monotone over
        # the node id's whole history; the baseline recorded here is
        # what keeps ``NodeStats`` per-tenure when an id is explicitly
        # reused after retirement.
        self._store.register(node_id)
        self._since_checkpoint[node_id] = 0
        self._stats_base[node_id] = (
            self._metrics.counter("node_checkpoints", node=node_id),
            self._metrics.counter("node_recoveries", node=node_id),
        )

    def _tenure_counts(self, node_id: int) -> tuple[int, int]:
        """This tenure's (checkpoints, recoveries) for one live node."""
        base_checkpoints, base_recoveries = self._stats_base.get(
            node_id, (0, 0)
        )
        return (
            self._metrics.counter("node_checkpoints", node=node_id)
            - base_checkpoints,
            self._metrics.counter("node_recoveries", node=node_id)
            - base_recoveries,
        )

    def _ordered_nodes(self) -> list[IngestNode]:
        return [self._nodes[node_id] for node_id in sorted(self._nodes)]

    def _sync_membership(self) -> None:
        """Point the aggregator at the current membership and epoch."""
        self._aggregator.set_nodes(
            self._ordered_nodes(), epoch=self._router.epoch
        )

    # ------------------------------------------------------------------
    # durability manifest
    # ------------------------------------------------------------------
    def _manifest_payload(self) -> dict[str, Any]:
        """Everything :func:`recover_cluster` needs, JSON-safe.

        The schedule fields (``failures``, ``scale_events``,
        ``retention``) are deliberately absent: they describe one run's
        stream positions, which a recovered simulation has already
        consumed.  Archived retention windows are likewise volatile —
        recovery resumes the *live* window only.
        """
        config = self._config
        return {
            "config": {
                "template": config.template.to_dict(),
                "seed": config.seed,
                "buffer_limit": config.buffer_limit,
                "checkpoint_every": config.checkpoint_every,
                "hot_keys": list(config.hot_keys),
                "hot_key_threshold": config.hot_key_threshold,
                "track_truth": config.track_truth,
                "fanout": config.fanout,
                "routing": config.routing,
                "ring_points": config.ring_points,
                "wal_segment_events": config.wal_segment_events,
                "traffic_table_limit": config.traffic_table_limit,
                "ingest_workers": config.ingest_workers,
                "delivery_batch": config.delivery_batch,
                "wal_fsync_every": config.wal_fsync_every,
                "plan": config.plan,
                "aggregation": config.aggregation,
                "gossip_fanout": config.gossip_fanout,
                "gossip_every": config.gossip_every,
                "membership": config.membership,
                "suspect_after": config.suspect_after,
                "membership_quorum": config.membership_quorum,
                "membership_heal": config.membership_heal,
                "consume_mode": config.consume_mode,
            },
            "topology": self._topology_stamp(),
            "incarnations": {
                str(node_id): incarnation
                for node_id, incarnation in self._incarnation.items()
            },
            # Per-tenure counts for the live nodes (the historical
            # manifest schema); the registry's lifetime counters ride
            # along under "metrics" below.
            "checkpoints": {
                str(node_id): self._tenure_counts(node_id)[0]
                for node_id in self._nodes
            },
            "recoveries": {
                str(node_id): self._tenure_counts(node_id)[1]
                for node_id in self._nodes
            },
            "stats_base": {
                str(node_id): list(base)
                for node_id, base in self._stats_base.items()
            },
            "next_auto_id": self._next_auto_id,
            "window": self._window,
            "mid_migration": self._mid_migration,
            "counters": {
                "windows_collapsed": self._metrics.counter(
                    "windows_collapsed_total"
                ),
                "scale_events_applied": self._metrics.counter(
                    "scale_events_total"
                ),
                "keys_migrated": self._metrics.counter(
                    "keys_migrated_total"
                ),
                "migration_batches": self._metrics.counter(
                    "migration_batches_total"
                ),
                "migration_bytes": self._metrics.counter(
                    "migration_bytes_total"
                ),
            },
            # The full monotone counter state: every registry counter as
            # [name, labels, value], re-imported by recovery so lifetime
            # telemetry survives process death instead of resetting.
            "metrics": {"counters": self._metrics.export_counters()},
            "retired": [asdict(stats) for stats in self._retired],
        }

    def _sync_manifest(self) -> None:
        """Persist the manifest so on-disk state is always recoverable."""
        self._store.write_manifest(self._manifest_payload())

    def _restore(self, manifest: dict[str, Any]) -> None:
        """Rebuild the simulation from a loaded store manifest.

        Every node goes through the standard recovery path — bumped
        incarnation, checkpoint restore, durable-log replay — exactly as
        if the whole cluster had crashed at once (it did: the process
        died).  See :func:`recover_cluster`.
        """
        journal = self._store.pending_migrations()
        if manifest.get("mid_migration"):
            if not journal:
                # Pre-journal store (or a hand-built manifest): between
                # drain and fence a migrated counter exists in no
                # checkpoint and no log, so without the journaled batch
                # lines the state is genuinely unrecoverable.
                raise StateError(
                    "cluster died mid-migration and the store holds no "
                    "migration journal: migrated counters may be "
                    "absent from every checkpoint, so the persisted "
                    "state cannot be recovered losslessly"
                )
        elif journal:
            # The migration completed (its fences and the cleared
            # manifest flag are durable) but the writer died before
            # dropping the journal: stale, ignore it.
            self._store.clear_migration_journal()
            journal = []
        self._mid_migration = False
        try:
            topology = manifest["topology"]
            node_ids = sorted(int(node) for node in topology["nodes"])
            epoch = int(topology["epoch"])
            self._incarnation = {
                int(node): int(count)
                for node, count in manifest["incarnations"].items()
            }
            tenure_checkpoints = {
                int(node): int(count)
                for node, count in manifest["checkpoints"].items()
            }
            tenure_recoveries = {
                int(node): int(count)
                for node, count in manifest["recoveries"].items()
            }
            # Post-telemetry manifests carry the per-tenure baselines
            # and the full lifetime counter state; older ones default to
            # zero baselines (lifetime == tenure without id reuse).
            self._stats_base = {
                int(node): (int(pair[0]), int(pair[1]))
                for node, pair in manifest.get("stats_base", {}).items()
            }
            metrics_blob = manifest.get("metrics")
            if metrics_blob is not None:
                self._metrics.import_counters(metrics_blob["counters"])
            else:
                for node, count in tenure_checkpoints.items():
                    self._metrics.load_counter(
                        "node_checkpoints", count, node=node
                    )
                for node, count in tenure_recoveries.items():
                    self._metrics.load_counter(
                        "node_recoveries", count, node=node
                    )
                counters = manifest["counters"]
                for name, key in (
                    ("windows_collapsed_total", "windows_collapsed"),
                    ("scale_events_total", "scale_events_applied"),
                    ("keys_migrated_total", "keys_migrated"),
                    ("migration_batches_total", "migration_batches"),
                    ("migration_bytes_total", "migration_bytes"),
                ):
                    self._metrics.load_counter(name, int(counters[key]))
            self._next_auto_id = int(manifest["next_auto_id"])
            self._window = int(manifest["window"])
            self._retired = [
                NodeStats(**entry) for entry in manifest.get("retired", ())
            ]
        except (KeyError, TypeError, ValueError, ParameterError) as exc:
            raise StateError(f"malformed cluster manifest: {exc}") from exc
        for node_id in node_ids:
            self._stats_base.setdefault(node_id, (0, 0))
        self._router = self._fresh_router(node_ids)
        self._router.restore_topology(node_ids, epoch=epoch)
        self._nodes = {}
        self._since_checkpoint = {}
        self._aggregator = None  # type: ignore[assignment]
        for node_id in node_ids:
            self._recover_node(node_id)
        self._aggregator = MergeTreeAggregator(
            self._ordered_nodes(),
            fanout=self._config.fanout,
            epoch=self._router.epoch,
        )
        if journal:
            self._replay_migration_journal(journal)
        for node_id in node_ids:
            self._maybe_checkpoint(node_id)
        # Digests are volatile by design: rebuild every node's own entry
        # from its recovered bank (= checkpoint + WAL replay); what the
        # dead process had learned about peers is re-learned by the
        # anti-entropy rounds that follow.
        self._gossip = self._fresh_gossip()
        if self._gossip is not None:
            for node_id in node_ids:
                self._gossip.add_node(node_id)
                self._gossip.refresh(
                    self._nodes[node_id],
                    epoch=self._router.epoch,
                    window=self._window,
                )
        self._gossip_convergence_rounds = 0
        self._gossip_max_staleness = None
        # Membership views are volatile; process recovery just recovered
        # *every* node (checkpoint + WAL replay), so the rebuilt cluster
        # starts with no dead nodes and a blank detector.
        self._membership = self._fresh_membership()
        self._sync_manifest()

    def _replay_migration_journal(self, lines: list[str]) -> None:
        """Finish a migration whose writer died before its fences.

        Every node is already recovered (checkpoint + WAL replay), so
        each holds its *pre-migration* state unless its fence
        checkpoint landed before the death.  Per journaled batch:

        * the **source** (if live and its checkpoint predates the
          batch's topology epoch) drains the batch's keys again — the
          drained copies are discarded, the journal line is the
          authoritative moved state;
        * the **target** (same epoch guard) absorbs the journaled
          batch on the standard ``(seed, epoch, key)``-derived streams,
          bit-identical to the absorb the dead process was executing.

        The epoch guard is what makes replay idempotent: a fence
        checkpoint stamps the post-change topology epoch, so a node
        whose fence landed already has the move inside its checkpoint
        and is skipped.  A torn *trailing* line (the writer died inside
        the journal append) is dropped — its drain-side state was
        rebuilt by the source's WAL replay, so nothing is lost; a torn
        line anywhere else means the journal itself is corrupt and
        recovery refuses.
        """
        batches: list[MigrationBatch] = []
        for index, line in enumerate(lines):
            try:
                batches.append(MigrationBatch.decode(line))
            except StateError:
                if index == len(lines) - 1:
                    self._telemetry.trace(
                        "migration_journal_torn", dropped_line=index
                    )
                    break
                raise
        epoch_cache: dict[int, int] = {}

        def checkpoint_epoch(node_id: int) -> int:
            if node_id not in epoch_cache:
                line = self._store.latest(node_id)
                if line is None:
                    epoch_cache[node_id] = -1
                else:
                    topology = BankCheckpoint.decode(line).topology or {}
                    epoch_cache[node_id] = int(topology.get("epoch", -1))
            return epoch_cache[node_id]

        touched: set[int] = set()
        replayed_keys = 0
        for batch in batches:
            if (
                batch.source in self._nodes
                and checkpoint_epoch(batch.source) < batch.epoch
            ):
                self._nodes[batch.source].drain(batch.snapshots.keys())
                touched.add(batch.source)
            if (
                batch.target in self._nodes
                and checkpoint_epoch(batch.target) < batch.epoch
            ):
                replayed_keys += absorb_batch(
                    batch, self._nodes[batch.target], seed=self._config.seed
                )
                touched.add(batch.target)
        for node_id in sorted(touched & set(self._router.nodes)):
            self.checkpoint_node(node_id)
        self._telemetry.trace(
            "migration_replay",
            batches=len(batches),
            keys=replayed_keys,
            nodes=sorted(touched),
        )
        self._store.clear_migration_journal()

    # ------------------------------------------------------------------
    # component access
    # ------------------------------------------------------------------
    @property
    def config(self) -> ClusterConfig:
        """The deployment shape this simulation drives."""
        return self._config

    @property
    def nodes(self) -> list[IngestNode]:
        """The live ingest nodes, ordered by node id."""
        return self._ordered_nodes()

    @property
    def router(self) -> ClusterRouter:
        """The key router."""
        return self._router

    @property
    def aggregator(self) -> MergeTreeAggregator:
        """The merge-tree aggregator over the live nodes."""
        return self._aggregator

    @property
    def store(self) -> CheckpointStore:
        """The durability backend (checkpoints + write-ahead log)."""
        return self._store

    @property
    def gossip(self) -> GossipNetwork | None:
        """The gossip layer (``None`` unless ``aggregation='gossip'``)."""
        return self._gossip

    @property
    def membership(self) -> FailureDetector | None:
        """The failure detector (``None`` unless ``membership=True``)."""
        return self._membership

    @property
    def dead_nodes(self) -> tuple[int, ...]:
        """Nodes killed with ``heal=False`` and not yet self-healed."""
        return tuple(sorted(self._dead))

    def is_node_dead(self, node_id: int) -> bool:
        """Whether the node is currently dead (awaiting self-healing)."""
        return node_id in self._dead

    @property
    def telemetry(self) -> Telemetry:
        """The telemetry facade (registry + trace sink + stage timers)."""
        return self._telemetry

    # ------------------------------------------------------------------
    # telemetry exporters
    # ------------------------------------------------------------------
    def _refresh_derived_metrics(self) -> None:
        """Publish node/router/storage state the registry can't see.

        Counters derived from node lifetime stats use ``load_counter``
        (a monotone floor), so they can never regress even across crash
        recovery; everything else here is a gauge and point-in-time by
        definition.  Reading is side-effect-free on cluster state, so
        exporting a snapshot is as inert as the rest of telemetry.
        """
        metrics = self._metrics
        for node in self._ordered_nodes():
            node_id = node.node_id
            metrics.load_counter(
                "events_delivered_total", node.events_ingested,
                node=node_id,
            )
            metrics.load_counter(
                "events_coalesced_total", node.events_coalesced,
                node=node_id,
            )
            metrics.set_gauge(
                "node_pending_events", node.pending, node=node_id
            )
            metrics.set_gauge("node_keys", len(node.bank), node=node_id)
            metrics.set_gauge(
                "node_state_bits", node.state_bits(), node=node_id
            )
        for stats in self._retired:
            metrics.load_counter(
                "events_delivered_total", stats.events,
                node=stats.node_id,
            )
        metrics.set_gauge("live_nodes", len(self._nodes))
        metrics.set_gauge("topology_epoch", self._router.epoch)
        metrics.set_gauge("retention_window", self._window)
        metrics.set_gauge(
            "traffic_table_size", self._router.traffic_table_size
        )
        metrics.set_gauge("hot_key_count", len(self._router.hot_keys))
        # The router's hot-key traffic table, top-k by observed count —
        # republished wholesale because membership shifts as keys are
        # promoted or evicted.
        metrics.clear_gauges("traffic_top")
        for key, count in self._router.traffic_top(10):
            metrics.set_gauge("traffic_top", count, key=key)
        metrics.set_gauge("storage_bytes", self._store.storage_bytes())
        if self._gossip is not None:
            metrics.set_gauge(
                "gossip_fanout", self._config.gossip_fanout
            )
            if self._gossip_max_staleness is not None:
                metrics.set_gauge(
                    "gossip_max_staleness", self._gossip_max_staleness
                )

    def metrics_snapshot(self) -> dict[str, Any]:
        """The strict-JSON metrics document for this cluster, now.

        Refreshes the derived gauges, then exports the registry's three
        series families plus the merged per-worker ``stages`` timings.
        Safe whenever no run is mid-flight (between runs, after
        :meth:`run` returns, or on a freshly recovered cluster).
        """
        self._refresh_derived_metrics()
        return self._telemetry.snapshot()

    def render_prometheus(self) -> str:
        """Prometheus text rendering of :meth:`metrics_snapshot`."""
        self._refresh_derived_metrics()
        return self._telemetry.render_prometheus()

    # ------------------------------------------------------------------
    # gossip aggregation
    # ------------------------------------------------------------------
    def gossip_due(self, position: int) -> bool:
        """Whether a gossip round is scheduled just before ``position``.

        Like retention boundaries, gossip rounds are exact stream
        positions — every ``gossip_every`` delivered events — so the
        execution plans can fence them through the drain handshake and
        a parallel run gossips against exactly the serial state.
        """
        every = self._config.gossip_every
        return (
            self._gossip is not None
            and every is not None
            and position > 0
            and position % every == 0
        )

    def gossip_round(self) -> int:
        """Run one scheduled push-pull round over the live nodes.

        Every node refreshes its own digest entry (flushing its bank —
        a flush only applies events already in the durable log, so
        recovery semantics are untouched), then exchanges digests with
        its seeded-random peers.  Returns the lifetime round index.

        Dead nodes (killed with ``heal=False``) are excluded: their
        entries neither refresh nor exchange, which is exactly the
        silence the attached failure detector measures.  When membership
        is on, the round ends with the heal pass — any origin the round
        confirmed dead is recovered (or rebalanced away) right here, at
        a drained fence position, so serial and parallel runs heal at
        identical states.
        """
        if self._gossip is None:
            raise StateError(
                "gossip_round() needs aggregation='gossip' "
                f"(this cluster runs {self._config.aggregation!r})"
            )
        participants = {
            node_id: node
            for node_id, node in self._nodes.items()
            if node_id not in self._dead
        }
        round_index = self._gossip.run_round(
            participants, epoch=self._router.epoch, window=self._window
        )
        self._telemetry.trace(
            "gossip_round",
            position=self._stream_position,
            round=round_index,
        )
        if self._membership is not None:
            self._apply_membership()
        return round_index

    def node_view(self, node_id: int) -> GlobalView:
        """One node's decentralized read: its gossip digest, merged.

        The view covers whatever the node's digest has learned so far —
        stale by at most the traffic since each origin's last refresh,
        and after :meth:`~repro.cluster.gossip.GossipNetwork.converge`
        (which :meth:`run` performs at end of stream) bit-identical to
        :meth:`~repro.cluster.aggregator.MergeTreeAggregator.
        global_view` on ``exact`` templates.
        """
        if self._gossip is None:
            raise StateError(
                "node_view() needs aggregation='gossip' "
                f"(this cluster runs {self._config.aggregation!r})"
            )
        return self._gossip.node_view(node_id, fanout=self._config.fanout)

    def close(self) -> None:
        """Release the store's backend resources (open WAL handles).

        Durable state is flushed as it is written, so closing loses
        nothing; a closed file-backed cluster can be re-opened with
        :func:`recover_cluster`.  Also usable as a context manager::

            with ClusterSimulation(config) as sim:
                sim.run(events)
        """
        self._store.close()

    def __enter__(self) -> "ClusterSimulation":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def archived_windows(self) -> list[GlobalView]:
        """Window views the retention policy has collapsed and kept."""
        return list(self._archived)

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def run(self, events: Iterable[KeyedEvent]) -> SimulationResult:
        """Drive the cluster over ``events`` and aggregate at the end.

        Delivery goes through the execution plan the config selects
        (:func:`~repro.cluster.pipeline.make_plan`): the serial loop at
        ``ingest_workers=1``, worker-sharded batches otherwise.  Either
        way the result is the same pure function of ``(config,
        stream)``; only the wall-clock fields differ.
        """
        plan = make_plan(self._config)
        started = time.perf_counter()
        plan.execute(self, events)
        if self._dead:
            # The stream ended with nodes still dead: the cluster must
            # notice and heal them itself before the run can finalize.
            # Settling is plain gossip rounds — detection, quorum, and
            # the heal all live inside gossip_round() — with a loud
            # backstop (an unreachable explicit quorum would otherwise
            # spin forever).
            limit = (
                self._config.suspect_after + 4 * len(self._nodes) + 16
            )
            settled = 0
            while self._dead:
                if settled >= limit:
                    raise StateError(
                        "membership failed to confirm dead nodes "
                        f"{sorted(self._dead)} within {limit} settle "
                        "rounds (is membership_quorum reachable?)"
                    )
                self.gossip_round()
                settled += 1
        for node in self._ordered_nodes():
            node.flush()
        elapsed = time.perf_counter() - started
        if self._gossip is not None:
            # Staleness is measured *before* the final anti-entropy pass
            # — it is the lag a decentralized read would have seen at
            # end of stream; the convergence rounds then drive every
            # node's view to the exact central answer.
            self._gossip_max_staleness = self._gossip.max_staleness(
                self._nodes
            )
            self._gossip_convergence_rounds = self._gossip.converge(
                self._nodes, epoch=self._router.epoch, window=self._window
            )
        self._sync_manifest()
        view = self._aggregator.global_view()
        if self._archived:
            view = merge_views([*self._archived, view])
        return self._result(view, elapsed)

    # ------------------------------------------------------------------
    # execution-plan hooks (repro.cluster.pipeline)
    # ------------------------------------------------------------------
    def deliver_event(self, event: KeyedEvent) -> None:
        """Serial delivery of one event: route, log, apply, maybe fence.

        When telemetry is enabled the three in-process stages are timed
        individually (``route`` → ``deliver`` → ``bank_consume``; the
        ``fsync`` stage is timed inside the file-backed WAL).  The
        timed and untimed paths perform the identical state mutations —
        telemetry only ever reads the clock.
        """
        telemetry = self._telemetry
        self._stream_position += 1
        if self._dead:
            node_id = self._router.route_event(event)
            if node_id in self._dead:
                # The node is dead but still owns its key range: the
                # event parks in its durable log (the ingest tier's
                # unacknowledged queue) and replays into the bank when
                # membership heals the node.  No submit, no checkpoint
                # budget — volatile state stays untouched until then.
                self._store.wal.append(node_id, event)
                if telemetry.trace_active:
                    telemetry.position = self._stream_position
                    telemetry.trace(
                        "event_deferred", node=node_id, count=event.count
                    )
                return
            self._store.wal.append(node_id, event)
            self._nodes[node_id].submit(event)
            if telemetry.trace_active:
                telemetry.position = self._stream_position
                telemetry.trace(
                    "event_delivered", node=node_id, count=event.count
                )
        elif telemetry.enabled:
            cells = self._stage_cells
            if cells is None:
                timer = telemetry.stage_timer()
                cells = self._stage_cells = (
                    timer.cell("route"),
                    timer.cell("deliver"),
                    timer.cell("bank_consume"),
                )
            route_cell, deliver_cell, consume_cell = cells
            perf = time.perf_counter
            started = perf()
            node_id = self._router.route_event(event)
            routed = perf()
            self._store.wal.append(node_id, event)
            appended = perf()
            self._nodes[node_id].submit(event)
            consumed = perf()
            # Inline StageTimer.add (see StageTimer.cell): three method
            # calls per event are measurable on this path.
            seconds = routed - started
            route_cell[0] += 1
            route_cell[1] += seconds
            if seconds > route_cell[2]:
                route_cell[2] = seconds
            seconds = appended - routed
            deliver_cell[0] += 1
            deliver_cell[1] += seconds
            if seconds > deliver_cell[2]:
                deliver_cell[2] = seconds
            seconds = consumed - appended
            consume_cell[0] += 1
            consume_cell[1] += seconds
            if seconds > consume_cell[2]:
                consume_cell[2] = seconds
            if telemetry.sink.active:
                telemetry.position = self._stream_position
                telemetry.trace(
                    "event_delivered", node=node_id, count=event.count
                )
        else:
            node_id = self._router.route_event(event)
            self._store.wal.append(node_id, event)
            self._nodes[node_id].submit(event)
        self._since_checkpoint[node_id] += event.count
        self._maybe_checkpoint(node_id)

    def route_event(self, event: KeyedEvent) -> int:
        """Route one event to its owning node id (coordinator thread).

        Routing mutates sequential state — hot-key round-robin cursors
        and the traffic table — so plans must call this in stream
        order, never from a worker.
        """
        return self._router.route_event(event)

    def apply_events(
        self, node_id: int, events: Iterable[KeyedEvent]
    ) -> None:
        """WAL-append and buffer-apply one node's routed batch, in order.

        Worker-thread entry point of the parallel plan.  It touches
        only ``node_id``'s state (its WAL segments and its node's
        buffer/bank), which is what makes concurrent calls for
        *different* nodes safe without locks; the caller guarantees at
        most one in-flight call per node (the drain handshake).

        With telemetry enabled each worker accumulates ``deliver`` and
        ``bank_consume`` stage timings into its own thread-confined
        timer (no locks on the hot path); the facade merges the
        per-worker timers at snapshot time.
        """
        wal_append = self._store.wal.append
        if node_id in self._dead:
            # Dead node: the batch parks in its durable log only (see
            # :meth:`deliver_event`); the heal's WAL replay applies it.
            for event in events:
                wal_append(node_id, event)
            return
        submit = self._nodes[node_id].submit
        if not self._telemetry.enabled:
            for event in events:
                wal_append(node_id, event)
                submit(event)
            return
        perf = time.perf_counter
        timer = self._telemetry.stage_timer()
        deliver_cell = timer.cell("deliver")
        consume_cell = timer.cell("bank_consume")
        for event in events:
            started = perf()
            wal_append(node_id, event)
            appended = perf()
            submit(event)
            consumed = perf()
            seconds = appended - started
            deliver_cell[0] += 1
            deliver_cell[1] += seconds
            if seconds > deliver_cell[2]:
                deliver_cell[2] = seconds
            seconds = consumed - appended
            consume_cell[0] += 1
            consume_cell[1] += seconds
            if seconds > consume_cell[2]:
                consume_cell[2] = seconds

    def record_delivery(self, node_id: int, count: int) -> bool:
        """Coordinator-side bookkeeping for one routed event.

        Accumulates the node's checkpoint budget exactly as serial
        delivery does and returns whether the periodic budget is now
        due — the parallel plan reacts by draining the node and calling
        :meth:`checkpoint_node`, which resets the budget.
        """
        telemetry = self._telemetry
        self._stream_position += 1
        if node_id in self._dead:
            # Mirror of the serial dead branch: the event reached the
            # durable log only, so no checkpoint budget accrues and no
            # fence may fire while the node is down.
            if telemetry.trace_active:
                telemetry.position = self._stream_position
                telemetry.trace(
                    "event_deferred", node=node_id, count=count
                )
            return False
        if telemetry.trace_active:
            telemetry.position = self._stream_position
            telemetry.trace("event_delivered", node=node_id, count=count)
        self._since_checkpoint[node_id] += count
        every = self._config.checkpoint_every
        return (
            every is not None and self._since_checkpoint[node_id] >= every
        )

    def _maybe_checkpoint(self, node_id: int) -> None:
        """Checkpoint when the periodic budget or a WAL segment fills.

        The second condition is the forced *segment fence*: a filled
        :class:`~repro.cluster.storage.SegmentedLog` segment triggers a
        checkpoint even when periodic checkpointing is disabled, which
        is what bounds the retained durable log by the segment size.
        """
        if node_id in self._dead:
            # A dead node's WAL is its pending replay queue; fencing it
            # would destroy undelivered events.  The heal checkpoints
            # eagerly after replay, exactly like :meth:`crash_node`.
            return
        every = self._config.checkpoint_every
        if (
            every is not None and self._since_checkpoint[node_id] >= every
        ) or self._store.wal.needs_fence(node_id):
            self.checkpoint_node(node_id)

    def set_checkpoint_capture(
        self,
        capture: (
            Callable[[int, dict[str, Any], dict[str, Any]], str] | None
        ),
    ) -> None:
        """Install (or clear) the checkpoint-capture delegate.

        Execution-plan hook: while set, :meth:`checkpoint_node` asks
        ``capture(node_id, meta, topology)`` for the encoded checkpoint
        line instead of flushing and capturing the in-process node —
        the process plan's workers own the live banks.  Every durable
        step (save, WAL fence, manifest sync) still runs here.
        """
        self._checkpoint_capture = capture

    def set_migration_observer(
        self, observer: Callable[[str], None] | None
    ) -> None:
        """Install (or clear) the migration-batch wire observer.

        Execution-plan hook: while set, :meth:`_rebalance` hands every
        encoded batch line to ``observer`` (after journaling, before
        the in-process absorb) so the plan can replicate the move into
        its worker fleet at the same point in the move sequence.
        """
        self._migration_observer = observer

    # ------------------------------------------------------------------
    # checkpointing and failure
    # ------------------------------------------------------------------
    def _topology_stamp(self) -> dict[str, Any]:
        return {
            "epoch": self._router.epoch,
            "nodes": list(self._router.nodes),
            "routing": self._router.strategy.name,
        }

    def checkpoint_node(self, node_id: int) -> str:
        """Flush and checkpoint one node; truncates its durable log."""
        if node_id in self._dead:
            raise StateError(
                f"node {node_id} is dead: checkpointing its empty "
                "placeholder would fence away the WAL events pending "
                "replay at its heal"
            )
        telemetry = self._telemetry
        started = time.perf_counter() if telemetry.enabled else 0.0
        node = self._nodes[node_id]
        wal_seq = self._store.wal.sequence(node_id)
        meta: dict[str, Any] = {
            "node_id": node_id,
            "incarnation": self._incarnation[node_id],
            # The WAL fence position this checkpoint covers.  If the
            # process dies after the save but before the fence,
            # recovery truncates the log through this sequence so
            # the covered events can never be replayed on top of
            # themselves (the torn-fence protocol).
            "wal_seq": wal_seq,
        }
        topology = self._topology_stamp()
        if self._checkpoint_capture is not None:
            # The plan's delegate owns the live bank (a worker
            # subprocess): it flushes there, fills in the lifetime
            # stats, and returns the encoded line.
            line = self._checkpoint_capture(node_id, meta, topology)
        else:
            node.flush()
            meta.update(
                events_ingested=node.events_ingested,
                events_coalesced=node.events_coalesced,
                n_flushes=node.n_flushes,
            )
            line = BankCheckpoint.capture(
                node.bank, node.template, meta=meta, topology=topology
            ).encode()
        self._store.save(node_id, line)
        self._store.wal.fence(node_id)
        self._since_checkpoint[node_id] = 0
        self._metrics.inc("node_checkpoints", node=node_id)
        if telemetry.enabled:
            self._metrics.observe(
                "checkpoint_seconds", time.perf_counter() - started
            )
        telemetry.trace(
            "checkpoint_fence",
            position=self._stream_position,
            node=node_id,
            wal_seq=wal_seq,
        )
        self._sync_manifest()
        return line

    def _fence_all(self) -> None:
        """Checkpoint every live node (the window-collapse barrier).

        After a collapse every bank was reset, so none matches what
        "last checkpoint + log replay" would rebuild; the barrier
        re-checkpoints everything (truncating the logs) and recovery
        keeps its single code path — even when periodic checkpointing
        is disabled.  Migrations use the narrower per-move fence in
        :meth:`_rebalance`.
        """
        for node_id in sorted(self._nodes):
            self.checkpoint_node(node_id)

    def _recover_node(self, node_id: int) -> None:
        """The single recovery path: checkpoint restore + log replay.

        Bumps the node's incarnation (fresh seed — the replica must not
        share future coin flips with its dead predecessor), restores the
        store's latest checkpoint (or an empty bank if none was ever
        taken), then replays the durable log of events delivered since
        that checkpoint.  Used by :meth:`crash_node` for a single crash
        and by :func:`recover_cluster` for whole-process recovery.
        """
        config = self._config
        self._incarnation[node_id] = self._incarnation.get(node_id, -1) + 1
        incarnation_seed = node_seed(
            config.seed, node_id, self._incarnation[node_id]
        )
        node = IngestNode(
            node_id,
            config.template,
            seed=incarnation_seed,
            buffer_limit=config.buffer_limit,
            track_truth=config.track_truth,
            consume_mode=config.consume_mode,
        )
        line = self._store.latest(node_id)
        if line is not None:
            checkpoint = BankCheckpoint.decode(line)
            node.adopt_bank(checkpoint.restore(seed=incarnation_seed))
            node.events_ingested = int(
                checkpoint.meta.get("events_ingested", 0)
            )
            node.events_coalesced = int(
                checkpoint.meta.get("events_coalesced", 0)
            )
            node.n_flushes = int(checkpoint.meta.get("n_flushes", 0))
            wal_seq = checkpoint.meta.get("wal_seq")
            if wal_seq is not None:
                # Discard log entries the checkpoint already covers —
                # present only if the writer died between saving the
                # checkpoint and fencing its log.
                self._store.wal.truncate_through(node_id, int(wal_seq))
        self._nodes[node_id] = node
        if self._aggregator is not None:
            # The aggregator must see the replacement, not the corpse.
            self._sync_membership()
        replayed = self._store.wal.replay(node_id)
        for event in replayed:
            node.submit(event)
        self._since_checkpoint[node_id] = sum(
            event.count for event in replayed
        )
        self._metrics.inc("node_recoveries", node=node_id)
        self._telemetry.trace(
            "recover",
            position=self._stream_position,
            node=node_id,
            incarnation=self._incarnation[node_id],
            replayed=len(replayed),
        )

    def crash_node(self, node_id: int) -> None:
        """Destroy a node's volatile state, then recover it.

        Recovery = restore the last checkpoint (or an empty bank if none
        was ever taken) on a fresh incarnation seed, then replay the
        durable log of events delivered since that checkpoint.  If the
        replay leaves the node *overdue* — ``_since_checkpoint`` already
        at or past ``checkpoint_every``, or a WAL segment already full —
        the checkpoint is taken eagerly rather than deferred to the next
        delivery, so a crash-recover-crash at the same stream position
        can never replay the same log twice.
        """
        if node_id not in self._nodes:
            raise ParameterError(
                f"node {node_id} is not a live node "
                f"(live: {sorted(self._nodes)})"
            )
        if node_id in self._dead:
            raise StateError(
                f"node {node_id} is already dead; membership heals it, "
                "the driver must not"
            )
        self._metrics.inc("node_crashes", node=node_id)
        self._telemetry.trace(
            "crash", position=self._stream_position, node=node_id
        )
        self._recover_node(node_id)
        self._maybe_checkpoint(node_id)
        if self._gossip is not None:
            # The digest died with the node's volatile state; rebuild
            # its own entry from the recovered bank (checkpoint + log
            # replay).  Entries learned from peers are re-learned by
            # later anti-entropy rounds.
            self._gossip.reset_node(node_id)
            self._gossip.refresh(
                self._nodes[node_id],
                epoch=self._router.epoch,
                window=self._window,
            )
        self._sync_manifest()

    # ------------------------------------------------------------------
    # self-healing membership (repro.cluster.membership)
    # ------------------------------------------------------------------
    def apply_failure(self, failure: NodeFailure) -> None:
        """Apply one scheduled failure (execution-plan hook)."""
        if failure.heal:
            self.crash_node(failure.node_id)
        else:
            self.kill_node(failure.node_id)

    def kill_node(self, node_id: int) -> None:
        """Destroy a node's volatile state and do **not** recover it.

        The fault-injection half of self-healing membership: the node's
        bank and buffer die (replaced by an empty placeholder at the
        *same* incarnation — it draws no randomness, so the kill
        consumes no RNG), its digest is wiped **without** a refresh, and
        it stops participating in gossip rounds — so its entry's round
        stamp goes stale at every peer, which is what the failure
        detector feeds on.  The node stays in the router topology: its
        key range keeps routing here, and the events park in its durable
        WAL (no submits, no checkpoints) until the cluster confirms the
        death by quorum and heals it (:meth:`gossip_round`).
        """
        if self._membership is None:
            raise StateError(
                "kill_node() needs membership=True: nothing else would "
                "ever recover the node"
            )
        if node_id not in self._nodes:
            raise ParameterError(
                f"node {node_id} is not a live node "
                f"(live: {sorted(self._nodes)})"
            )
        if node_id in self._dead:
            raise StateError(f"node {node_id} is already dead")
        if len(self._nodes) - len(self._dead) <= 1:
            raise StateError(
                f"killing node {node_id} would leave no live survivor "
                "to detect it"
            )
        self._metrics.inc("node_crashes", node=node_id)
        self._metrics.inc("membership_kills_total")
        self._telemetry.trace(
            "kill", position=self._stream_position, node=node_id
        )
        assert self._gossip is not None  # membership requires gossip
        self._kill_rounds[node_id] = self._gossip.rounds
        self._dead.add(node_id)
        self._nodes[node_id] = self._fresh_node(
            node_id, self._incarnation[node_id]
        )
        self._since_checkpoint[node_id] = 0
        self._sync_membership()
        self._gossip.reset_node(node_id)
        self._sync_manifest()

    def _apply_membership(self) -> None:
        """Heal every origin the round just confirmed dead.

        Runs at the tail of :meth:`gossip_round` — a drained fence
        position in both execution plans, so serial and parallel runs
        heal at identical states.  A confirmation of an origin that is
        not actually dead (reachable only with an explicit
        ``membership_quorum`` below the live-node count) heals nothing;
        the origin's next refresh refutes it epidemically.
        """
        assert self._membership is not None
        for origin in self._membership.take_confirmed():
            if origin in self._dead:
                self._heal_node(origin)

    def _heal_node(self, origin: int) -> None:
        """Quorum-confirmed recovery of one dead node.

        ``membership_heal`` picks the path: ``recover`` replays the
        node's durable state (checkpoint + WAL) into a fresh
        incarnation; ``rebalance`` retires the id and migrates its key
        range to the survivors — after recovering it first, so the
        drain hands the survivors *everything* the dead node ever
        accepted (losslessness).  ``auto`` recovers when the store
        holds any of the node's state and rebalances away otherwise.
        """
        assert self._gossip is not None
        mode = self._config.membership_heal
        if mode == "auto":
            has_state = (
                self._store.latest(origin) is not None
                or self._store.wal.retained_events(origin) > 0
            )
            mode = "recover" if has_state else "rebalance"
        waited = self._gossip.rounds - self._kill_rounds.get(
            origin, self._gossip.rounds
        )
        self._membership_detection_rounds[origin] = waited
        if mode == "recover":
            self._heal_recover(origin)
        else:
            # No rebalance may run while any node is dead: the router
            # would migrate keys into an empty placeholder whose state
            # is lost at its own heal.  Recover the origin inline
            # (losslessness: the drain must hand the survivors
            # everything the dead node ever accepted), fence-heal any
            # *other* dead nodes, then drain the id away.  One
            # ``membership_heals_total`` tick per resolved kill: the
            # origin's is the increment below, the others' happen
            # inside the fence.
            self._heal_recover(origin)
            self._fence_heal_dead()
            self.scale_down(origin)
        self._metrics.inc("membership_heals_total")
        self._telemetry.trace(
            "membership_heal",
            position=self._stream_position,
            node=origin,
            mode=mode,
            rounds=waited,
        )
        self._sync_manifest()

    def _heal_recover(self, origin: int) -> None:
        """The recover path of a heal: :meth:`crash_node` minus the
        crash (that was accounted at the kill)."""
        self._dead.discard(origin)
        self._kill_rounds.pop(origin, None)
        self._recover_node(origin)
        self._maybe_checkpoint(origin)
        assert self._gossip is not None
        self._gossip.reset_node(origin)
        self._gossip.refresh(
            self._nodes[origin],
            epoch=self._router.epoch,
            window=self._window,
        )

    def _fence_heal_dead(self) -> None:
        """Force-heal every dead node (recover path), quorum or not.

        Topology changes and window collapses are full-cluster
        coordination points: a rebalance must not migrate keys into a
        dead placeholder, and a window must not archive a view missing
        a dead node's counts.  Both therefore heal the dead first —
        deterministically, at the same fenced stream position in serial
        and parallel runs.
        """
        for origin in sorted(self._dead):
            self._heal_recover(origin)
            self._metrics.inc("membership_heals_total")
            self._telemetry.trace(
                "membership_heal",
                position=self._stream_position,
                node=origin,
                mode="recover",
                forced=True,
            )
        if self._kill_rounds:
            self._kill_rounds.clear()

    # ------------------------------------------------------------------
    # elastic scaling
    # ------------------------------------------------------------------
    def apply_scale(self, scale: ScaleEvent) -> None:
        """Apply one scheduled topology change (execution-plan hook)."""
        if scale.action == "add":
            self.scale_up(scale.node_id)
        else:
            assert scale.node_id is not None  # enforced by ScaleEvent
            self.scale_down(scale.node_id)

    def _rebalance(self) -> None:
        """Migrate every key whose home moved, then fence the movers.

        Only nodes a batch actually touched (sources and targets) need
        a fence checkpoint: an untouched node's bank is still exactly
        what its last checkpoint plus log replay rebuilds (a flush only
        applies events already in the log), so its recovery path is
        unaffected.  With ring routing this keeps a resize's checkpoint
        cost proportional to the state that moved, not cluster size.

        The whole move happens in process memory and only reaches
        durability at the closing fence checkpoints, so the durable
        state is *inconsistent* until the last fence lands.  The
        manifest flags that window (``mid_migration``) before the first
        counter moves, and every batch line is journaled in the store
        *before* its absorb — between drain and absorb the journal is
        the only durable copy of the moved counters — so
        :func:`recover_cluster` can replay a migration whose writer
        died inside it (:meth:`_replay_migration_journal`) instead of
        refusing.
        """
        self._mid_migration = True
        self._sync_manifest()
        plan = plan_rebalance(
            self._nodes,
            self._router.home_node,
            epoch=self._router.epoch,
        )
        observer = self._migration_observer

        def on_batch(line: str) -> None:
            # Durability first: the journal append must land before the
            # wire ship / in-process absorb consumes the drained state.
            self._store.journal_migration(line)
            if observer is not None:
                observer(line)

        report = execute_rebalance(
            plan, self._nodes, seed=self._config.seed, on_batch=on_batch
        )
        self._metrics.inc("keys_migrated_total", report.keys_moved)
        self._metrics.inc("migration_batches_total", report.n_batches)
        self._metrics.inc("migration_bytes_total", report.bytes_shipped)
        self._telemetry.trace(
            "migration",
            position=self._stream_position,
            epoch=self._router.epoch,
            keys_moved=report.keys_moved,
            batches=report.n_batches,
            bytes_shipped=report.bytes_shipped,
        )
        touched = {move.source for move in plan.moves} | {
            move.target for move in plan.moves
        }
        # A node leaving the topology (scale-down source) is about to be
        # retired; checkpointing its now-empty bank would be wasted.
        for node_id in sorted(touched & set(self._router.nodes)):
            self.checkpoint_node(node_id)
        self._mid_migration = False
        # Ordering matters: the manifest must record the completed
        # migration (flag cleared) *before* the journal is dropped.  A
        # death in between leaves flag=False plus a stale journal,
        # which recovery ignores and clears; the reverse order could
        # leave flag=True with no journal — an unrecoverable refusal.
        self._sync_manifest()
        self._store.clear_migration_journal()

    def scale_up(self, node_id: int | None = None) -> int:
        """Add one ingest node and migrate its keys in; returns its id.

        The new node's seed derives from the cluster seed, its id, and
        its incarnation, exactly like an initial node — so an elastic
        run is as reproducible as a static one.  Auto-assigned ids are
        monotone over the cluster's whole history, and an explicitly
        reused id starts at a bumped incarnation: either way a new node
        can never share RNG streams with a retired predecessor, which
        would break the independence Remark 2.4's merging assumes.
        """
        self._fence_heal_dead()
        if node_id is None:
            node_id = self._next_auto_id
        new_id = self._router.add_node(node_id)
        self._next_auto_id = max(self._next_auto_id, new_id + 1)
        incarnation = self._incarnation.get(new_id, -1) + 1
        self._incarnation[new_id] = incarnation
        self._nodes[new_id] = self._fresh_node(new_id, incarnation)
        self._init_bookkeeping(new_id)
        if self._gossip is not None:
            self._gossip.add_node(new_id)
        self._sync_membership()
        self._rebalance()
        self._metrics.inc("scale_events_total")
        self._sync_manifest()
        return new_id

    def scale_down(self, node_id: int) -> None:
        """Drain one node into the survivors and retire it.

        Every key the node holds migrates to its new home (the node is
        no longer in the topology, so every key has one); its lifetime
        stats — including the keys and state bits it held at drain time
        — are preserved in the result as a ``retired`` row.
        """
        if node_id not in self._nodes:
            raise ParameterError(
                f"node {node_id} is not a live node "
                f"(live: {sorted(self._nodes)})"
            )
        if len(self._nodes) == 1:
            raise ParameterError("cannot remove the last node")
        self._fence_heal_dead()
        retiring = self._nodes[node_id]
        retiring.flush()
        keys_at_drain = len(retiring.bank)
        state_bits_at_drain = retiring.state_bits()
        self._router.remove_node(node_id)
        # The retiring node stays in the mapping as a migration source;
        # the router no longer targets it, so the rebalance empties it.
        self._rebalance()
        node = self._nodes.pop(node_id)
        checkpoints, recoveries = self._tenure_counts(node_id)
        self._retired.append(
            NodeStats(
                node_id=node_id,
                events=node.events_ingested,
                keys=keys_at_drain,
                flushes=node.n_flushes,
                checkpoints=checkpoints,
                recoveries=recoveries,
                state_bits=state_bits_at_drain,
                retired=True,
            )
        )
        del self._stats_base[node_id]
        self._store.drop(node_id)
        del self._since_checkpoint[node_id]
        if self._gossip is not None:
            # The drained keys now live in the survivors' banks, so the
            # retiring origin's entry must leave every digest — keeping
            # it would double-count its traffic forever.
            self._gossip.remove_node(node_id)
        self._sync_membership()
        self._metrics.inc("scale_events_total")
        self._sync_manifest()

    # ------------------------------------------------------------------
    # windowed retention
    # ------------------------------------------------------------------
    def collapse_window(self) -> GlobalView:
        """Close the current window: archive its view, reset the banks.

        Returns the archived view.  The archive keeps at most the
        policy's ``retained_windows`` views (all of them for unbounded
        policies); every node then takes a fence checkpoint of its
        fresh, empty bank so crash recovery never resurrects the closed
        window.
        """
        self._fence_heal_dead()
        self._window += 1
        view = self._aggregator.collapse_window(self._window)
        self._archived.append(view)
        self._metrics.inc("windows_collapsed_total")
        self._telemetry.trace(
            "retention_collapse",
            position=self._stream_position,
            window=self._window,
            archived_keys=view.n_keys,
        )
        self._fence_all()
        return view

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------
    def _result(
        self, view: GlobalView, elapsed: float
    ) -> SimulationResult:
        # Clamp the wall-clock floor so events_per_sec stays finite (and
        # therefore valid strict JSON) even when a tiny run lands inside
        # a single perf_counter tick.
        elapsed = max(elapsed, _MIN_ELAPSED_S)
        live_stats = [
            NodeStats(
                node_id=node.node_id,
                events=node.events_ingested,
                keys=len(node.bank),
                flushes=node.n_flushes,
                checkpoints=self._tenure_counts(node.node_id)[0],
                recoveries=self._tenure_counts(node.node_id)[1],
                state_bits=node.state_bits(),
            )
            for node in self._ordered_nodes()
        ]
        node_stats = tuple(
            sorted(self._retired + live_stats, key=lambda s: s.node_id)
        )
        total_events = sum(s.events for s in node_stats)
        mean = rms = worst = None
        if view.truth is not None and view.n_keys:
            report = view.error_report()
            mean = report.mean_relative_error
            rms = report.rms_relative_error
            worst = report.max_relative_error
        top = tuple(
            (
                key,
                estimate,
                view.truth.get(key, 0) if view.truth is not None else None,
            )
            for key, estimate in view.top_keys(5)
        )
        return SimulationResult(
            n_nodes=len(self._nodes),
            total_events=total_events,
            n_keys=view.n_keys,
            hot_keys=len(self._router.hot_keys),
            merge_rounds=view.merge_rounds,
            total_state_bits=view.total_state_bits(),
            node_stats=node_stats,
            top=top,
            mean_relative_error=mean,
            rms_relative_error=rms,
            max_relative_error=worst,
            elapsed_s=elapsed,
            events_per_sec=total_events / elapsed,
            epoch=self._router.epoch,
            scale_events_applied=self._metrics.counter(
                "scale_events_total"
            ),
            keys_migrated=self._metrics.counter("keys_migrated_total"),
            migration_batches=self._metrics.counter(
                "migration_batches_total"
            ),
            migration_bytes=self._metrics.counter(
                "migration_bytes_total"
            ),
            windows_collapsed=self._metrics.counter(
                "windows_collapsed_total"
            ),
            windows_retained=len(self._archived),
            storage_bytes=self._store.storage_bytes(),
            gossip_rounds=(
                self._gossip.rounds if self._gossip is not None else 0
            ),
            gossip_convergence_rounds=self._gossip_convergence_rounds,
            gossip_max_staleness=self._gossip_max_staleness,
            membership_kills=self._metrics.counter(
                "membership_kills_total"
            ),
            membership_suspicions=self._metrics.counter(
                "membership_suspicions_total"
            ),
            membership_confirmations=self._metrics.counter(
                "membership_confirmations_total"
            ),
            membership_heals=self._metrics.counter(
                "membership_heals_total"
            ),
            membership_detection_rounds=max(
                self._membership_detection_rounds.values(), default=0
            ),
        )


# ----------------------------------------------------------------------
# crash recovery from disk
# ----------------------------------------------------------------------
def _config_from_manifest(
    manifest: dict[str, Any], storage_dir: str
) -> ClusterConfig:
    """Rebuild a :class:`ClusterConfig` from a persisted manifest.

    Schedule fields (failures, scale events, retention) are not part of
    the manifest — they describe stream positions a recovered cluster
    has already consumed — so the rebuilt config carries none.
    """
    try:
        echoed = manifest["config"]
        return ClusterConfig(
            n_nodes=max(len(manifest["topology"]["nodes"]), 1),
            template=CounterTemplate.from_dict(echoed["template"]),
            seed=int(echoed["seed"]),
            buffer_limit=int(echoed["buffer_limit"]),
            checkpoint_every=(
                int(echoed["checkpoint_every"])
                if echoed["checkpoint_every"] is not None
                else None
            ),
            hot_keys=tuple(echoed["hot_keys"]),
            hot_key_threshold=(
                int(echoed["hot_key_threshold"])
                if echoed["hot_key_threshold"] is not None
                else None
            ),
            track_truth=bool(echoed["track_truth"]),
            fanout=int(echoed["fanout"]),
            routing=str(echoed["routing"]),
            ring_points=int(echoed["ring_points"]),
            storage="file",
            storage_dir=storage_dir,
            wal_segment_events=(
                int(echoed["wal_segment_events"])
                if echoed["wal_segment_events"] is not None
                else None
            ),
            traffic_table_limit=(
                int(echoed["traffic_table_limit"])
                if echoed["traffic_table_limit"] is not None
                else None
            ),
            # Absent from pre-parallel-ingest manifests: default serial.
            ingest_workers=int(echoed.get("ingest_workers", 1)),
            delivery_batch=int(echoed.get("delivery_batch", 64)),
            wal_fsync_every=(
                int(echoed["wal_fsync_every"])
                if echoed.get("wal_fsync_every") is not None
                else None
            ),
            # Absent from pre-process-plan manifests: default auto.
            plan=str(echoed.get("plan", "auto")),
            # Absent from pre-gossip manifests: default central tree.
            aggregation=str(echoed.get("aggregation", "tree")),
            gossip_fanout=int(echoed.get("gossip_fanout", 1)),
            gossip_every=(
                int(echoed["gossip_every"])
                if echoed.get("gossip_every") is not None
                else None
            ),
            # Absent from pre-membership manifests: default detection off.
            membership=bool(echoed.get("membership", False)),
            suspect_after=int(echoed.get("suspect_after", 2)),
            membership_quorum=(
                int(echoed["membership_quorum"])
                if echoed.get("membership_quorum") is not None
                else None
            ),
            membership_heal=str(echoed.get("membership_heal", "auto")),
            # Absent from pre-skip-ahead manifests: default skip_ahead.
            consume_mode=str(echoed.get("consume_mode", "skip_ahead")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StateError(f"malformed cluster manifest: {exc}") from exc


def recover_cluster(path: str) -> ClusterSimulation:
    """Rebuild a live simulation from a :class:`~repro.cluster.storage.
    FileStore` directory.

    The directory's manifest supplies the topology stamp (router epoch
    and node ids) and the config echo; every node then runs the standard
    recovery path — bumped incarnation, latest checkpoint restore,
    durable-log replay — exactly as if the whole cluster crashed at
    once.  On ``exact`` templates the recovered
    :meth:`~repro.cluster.aggregator.MergeTreeAggregator.global_view` is
    bit-identical to the pre-crash cluster's, crashes mid-migration
    included (a tier-1 invariant).

    Not recovered (volatile by design): archived retention windows (the
    live window resumes), the router's hot-key cursors and traffic
    table, and any un-fired failure/scale schedule.

    Raises :class:`~repro.errors.StateError` when the directory holds no
    manifest or any persisted record fails its checksum.
    """
    store = FileStore(path)
    try:
        manifest = store.load()
        config = _config_from_manifest(manifest, storage_dir=str(path))
        return ClusterSimulation(config, store=store, resume=True)
    except BaseException:
        # Failed recovery (no/corrupt manifest, mid-migration refusal,
        # checksum mismatch) must not leak the WAL handles load opened.
        store.close()
        raise
