"""Deterministic end-to-end driver for the counting cluster.

The simulation wires the cluster together the way a real deployment would:
a :class:`~repro.cluster.router.StableHashRouter` spreads a
:class:`~repro.stream.workload.KeyedEvent` stream over N
:class:`~repro.cluster.node.IngestNode` machines, nodes coalesce and flush
batches into their banks, periodic :class:`~repro.cluster.checkpoint.
BankCheckpoint` snapshots bound the blast radius of a crash, and a
:class:`~repro.cluster.aggregator.MergeTreeAggregator` produces the global
merged view at the end.

Failure injection and recovery
------------------------------
``ClusterConfig.failures`` schedules crashes at exact stream positions.  A
crash destroys the node's volatile state (bank and write buffer); recovery
restores the last checkpoint (on a fresh incarnation-derived seed, so the
replica does not share coin flips with its dead predecessor) and replays
the *durable log* — the events delivered to the node since that checkpoint,
which the simulation retains exactly as a real ingest tier would keep
unacknowledged messages in its queue.  Recovery is therefore lossless in
ground truth and fully deterministic: the same config and stream produce
bit-identical final estimates, crashes included.

Everything except wall-clock throughput metrics is derived from the
config seed, which is what the determinism tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.cluster.aggregator import GlobalView, MergeTreeAggregator
from repro.cluster.checkpoint import BankCheckpoint
from repro.cluster.node import CounterTemplate, IngestNode, default_template
from repro.cluster.router import StableHashRouter
from repro.errors import ParameterError
from repro.experiments.records import TextTable
from repro.rng.splitmix import derive_seed
from repro.stream.workload import KeyedEvent

__all__ = [
    "NodeFailure",
    "ClusterConfig",
    "NodeStats",
    "SimulationResult",
    "ClusterSimulation",
]

_NODE_SEED_KEY = 0x6E6F6465  # "node"
_ROUTER_SEED_KEY = 0x726F7574  # "rout"


@dataclass(frozen=True, slots=True)
class NodeFailure:
    """Crash ``node_id`` just before stream position ``at_event``."""

    at_event: int
    node_id: int

    def __post_init__(self) -> None:
        if self.at_event < 0:
            raise ParameterError(
                f"at_event must be non-negative, got {self.at_event}"
            )
        if self.node_id < 0:
            raise ParameterError(
                f"node_id must be non-negative, got {self.node_id}"
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of one simulated deployment."""

    n_nodes: int = 4
    template: CounterTemplate = field(default_factory=default_template)
    seed: int = 0
    buffer_limit: int = 512
    checkpoint_every: int | None = 50_000
    hot_keys: tuple[str, ...] = ()
    hot_key_threshold: int | None = None
    failures: tuple[NodeFailure, ...] = ()
    track_truth: bool = True
    fanout: int = 2

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ParameterError(
                f"n_nodes must be >= 1, got {self.n_nodes}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ParameterError(
                "checkpoint_every must be >= 1 or None, "
                f"got {self.checkpoint_every}"
            )
        for failure in self.failures:
            if failure.node_id >= self.n_nodes:
                raise ParameterError(
                    f"failure targets node {failure.node_id}, cluster has "
                    f"{self.n_nodes} nodes"
                )


@dataclass(frozen=True, slots=True)
class NodeStats:
    """Per-node accounting at the end of a run."""

    node_id: int
    events: int
    keys: int
    flushes: int
    checkpoints: int
    recoveries: int
    state_bits: int


@dataclass(frozen=True)
class SimulationResult:
    """Everything a run produced, ready for tables and JSON.

    ``elapsed_s`` and ``events_per_sec`` are wall-clock measurements and
    the only non-deterministic fields; everything else is a pure function
    of the config and the event stream.
    """

    n_nodes: int
    total_events: int
    n_keys: int
    hot_keys: int
    merge_rounds: int
    total_state_bits: int
    node_stats: tuple[NodeStats, ...]
    top: tuple[tuple[str, float, int | None], ...]
    mean_relative_error: float | None
    rms_relative_error: float | None
    max_relative_error: float | None
    elapsed_s: float
    events_per_sec: float

    @property
    def recoveries(self) -> int:
        """Total node recoveries across the run."""
        return sum(s.recoveries for s in self.node_stats)

    @property
    def checkpoints(self) -> int:
        """Total checkpoints taken across the run."""
        return sum(s.checkpoints for s in self.node_stats)

    def table(self) -> str:
        """Render the per-node table, top keys, and global summary."""
        nodes = TextTable(
            [
                "node",
                "events",
                "keys",
                "flushes",
                "ckpts",
                "recoveries",
                "state bits",
            ]
        )
        for s in self.node_stats:
            nodes.add_row(
                f"node-{s.node_id}",
                f"{s.events:,}",
                f"{s.keys:,}",
                f"{s.flushes:,}",
                str(s.checkpoints),
                str(s.recoveries),
                f"{s.state_bits:,}",
            )
        lines = [nodes.render()]
        if self.top:
            top = TextTable(["top key", "estimate", "truth", "rel. error"])
            for key, estimate, truth in self.top:
                if truth is None or truth == 0:
                    top.add_row(key, f"{estimate:,.0f}", "-", "-")
                else:
                    top.add_row(
                        key,
                        f"{estimate:,.0f}",
                        f"{truth:,}",
                        f"{100 * abs(estimate - truth) / truth:.3f}%",
                    )
            lines.append("")
            lines.append(top.render())
        lines.append("")
        lines.append(
            f"{self.n_nodes} nodes, {self.total_events:,} events over "
            f"{self.n_keys:,} keys ({self.hot_keys} split hot), "
            f"merge depth {self.merge_rounds}"
        )
        lines.append(
            f"throughput {self.events_per_sec:,.0f} events/s "
            f"({self.elapsed_s:.2f} s); merged view "
            f"{self.total_state_bits:,} state bits"
        )
        if self.rms_relative_error is not None:
            lines.append(
                f"global error vs truth: mean "
                f"{100 * self.mean_relative_error:.3f}%  rms "
                f"{100 * self.rms_relative_error:.3f}%  max "
                f"{100 * self.max_relative_error:.3f}%"
            )
        if self.recoveries:
            lines.append(
                f"{self.recoveries} node recoveries from "
                f"{self.checkpoints} checkpoints (durable-log replay)"
            )
        return "\n".join(lines)


class ClusterSimulation:
    """Event-loop driver over a configured cluster.

    One instance drives one window; :meth:`run` may be called once per
    event stream.  All cluster components are reachable (``nodes``,
    ``router``, ``aggregator``) for white-box assertions.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self._config = config
        self._router = StableHashRouter(
            config.n_nodes,
            hot_keys=config.hot_keys,
            hot_key_threshold=config.hot_key_threshold,
            salt=derive_seed(config.seed, _ROUTER_SEED_KEY),
        )
        self._nodes = [
            IngestNode(
                node_id,
                config.template,
                seed=derive_seed(config.seed, _NODE_SEED_KEY, node_id, 0),
                buffer_limit=config.buffer_limit,
                track_truth=config.track_truth,
            )
            for node_id in range(config.n_nodes)
        ]
        self._aggregator = MergeTreeAggregator(
            self._nodes, fanout=config.fanout
        )
        n = config.n_nodes
        self._last_checkpoint: list[str | None] = [None] * n
        self._wal: list[list[KeyedEvent]] = [[] for _ in range(n)]
        self._since_checkpoint = [0] * n
        self._incarnation = [0] * n
        self._recoveries = [0] * n
        self._checkpoints = [0] * n

    # ------------------------------------------------------------------
    # component access
    # ------------------------------------------------------------------
    @property
    def config(self) -> ClusterConfig:
        """The deployment shape this simulation drives."""
        return self._config

    @property
    def nodes(self) -> list[IngestNode]:
        """The live ingest nodes."""
        return list(self._nodes)

    @property
    def router(self) -> StableHashRouter:
        """The key router."""
        return self._router

    @property
    def aggregator(self) -> MergeTreeAggregator:
        """The merge-tree aggregator over the live nodes."""
        return self._aggregator

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def run(self, events: Iterable[KeyedEvent]) -> SimulationResult:
        """Drive the cluster over ``events`` and aggregate at the end."""
        failures: dict[int, list[int]] = {}
        for failure in self._config.failures:
            failures.setdefault(failure.at_event, []).append(failure.node_id)
        started = time.perf_counter()
        position = 0
        for event in events:
            for node_id in failures.get(position, ()):
                self.crash_node(node_id)
            self._deliver(event)
            position += 1
        for node in self._nodes:
            node.flush()
        elapsed = time.perf_counter() - started
        view = self._aggregator.global_view()
        return self._result(view, elapsed)

    def _deliver(self, event: KeyedEvent) -> None:
        node_id = self._router.route_event(event)
        self._wal[node_id].append(event)
        self._nodes[node_id].submit(event)
        self._since_checkpoint[node_id] += event.count
        every = self._config.checkpoint_every
        if every is not None and self._since_checkpoint[node_id] >= every:
            self.checkpoint_node(node_id)

    # ------------------------------------------------------------------
    # checkpointing and failure
    # ------------------------------------------------------------------
    def checkpoint_node(self, node_id: int) -> str:
        """Flush and checkpoint one node; truncates its durable log."""
        node = self._nodes[node_id]
        node.flush()
        checkpoint = BankCheckpoint.capture(
            node.bank,
            node.template,
            meta={
                "node_id": node_id,
                "incarnation": self._incarnation[node_id],
                "events_ingested": node.events_ingested,
                "n_flushes": node.n_flushes,
            },
        )
        line = checkpoint.encode()
        self._last_checkpoint[node_id] = line
        self._wal[node_id].clear()
        self._since_checkpoint[node_id] = 0
        self._checkpoints[node_id] += 1
        return line

    def crash_node(self, node_id: int) -> None:
        """Destroy a node's volatile state, then recover it.

        Recovery = restore the last checkpoint (or an empty bank if none
        was ever taken) on a fresh incarnation seed, then replay the
        durable log of events delivered since that checkpoint.
        """
        if not 0 <= node_id < len(self._nodes):
            raise ParameterError(
                f"node {node_id} out of range [0, {len(self._nodes)})"
            )
        config = self._config
        self._incarnation[node_id] += 1
        incarnation_seed = derive_seed(
            config.seed, _NODE_SEED_KEY, node_id, self._incarnation[node_id]
        )
        node = IngestNode(
            node_id,
            config.template,
            seed=incarnation_seed,
            buffer_limit=config.buffer_limit,
            track_truth=config.track_truth,
        )
        line = self._last_checkpoint[node_id]
        if line is not None:
            checkpoint = BankCheckpoint.decode(line)
            node.adopt_bank(checkpoint.restore(seed=incarnation_seed))
            node.events_ingested = int(
                checkpoint.meta.get("events_ingested", 0)
            )
            node.n_flushes = int(checkpoint.meta.get("n_flushes", 0))
        self._nodes[node_id] = node
        # The aggregator must see the replacement node, not the corpse.
        self._aggregator = MergeTreeAggregator(
            self._nodes, fanout=config.fanout
        )
        for event in self._wal[node_id]:
            node.submit(event)
        self._since_checkpoint[node_id] = sum(
            event.count for event in self._wal[node_id]
        )
        self._recoveries[node_id] += 1

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------
    def _result(
        self, view: GlobalView, elapsed: float
    ) -> SimulationResult:
        node_stats = tuple(
            NodeStats(
                node_id=node.node_id,
                events=node.events_ingested,
                keys=len(node.bank),
                flushes=node.n_flushes,
                checkpoints=self._checkpoints[node.node_id],
                recoveries=self._recoveries[node.node_id],
                state_bits=node.state_bits(),
            )
            for node in self._nodes
        )
        total_events = sum(s.events for s in node_stats)
        mean = rms = worst = None
        if view.truth is not None and view.n_keys:
            report = view.error_report()
            mean = report.mean_relative_error
            rms = report.rms_relative_error
            worst = report.max_relative_error
        top = tuple(
            (
                key,
                estimate,
                view.truth.get(key, 0) if view.truth is not None else None,
            )
            for key, estimate in view.top_keys(5)
        )
        return SimulationResult(
            n_nodes=self._config.n_nodes,
            total_events=total_events,
            n_keys=view.n_keys,
            hot_keys=len(self._router.hot_keys),
            merge_rounds=view.merge_rounds,
            total_state_bits=view.total_state_bits(),
            node_stats=node_stats,
            top=top,
            mean_relative_error=mean,
            rms_relative_error=rms,
            max_relative_error=worst,
            elapsed_s=elapsed,
            events_per_sec=(
                total_events / elapsed if elapsed > 0 else float("inf")
            ),
        )
