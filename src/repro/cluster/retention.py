"""Windowed retention: bounding a long-running cluster's state bits.

A cluster that never forgets grows one counter per key forever.  A
:class:`RetentionPolicy` chops the event stream into fixed-size windows:
at each boundary the simulation collapses the live banks into an archived
:class:`~repro.cluster.aggregator.GlobalView`
(:meth:`~repro.cluster.aggregator.MergeTreeAggregator.collapse_window`)
and every node restarts empty on a fresh window-derived seed (the
:meth:`~repro.analytics.sharding.ShardedCounter.reset` convention) —
so live state is bounded by one window's key set, and history is bounded
by how many archived views the policy retains.

Two shapes cover the standard semantics:

* :class:`TumblingRetention` — back-to-back windows of ``window_events``
  events; the cluster's horizon is the retained archive plus the live
  window.  ``keep_windows=None`` retains everything (the query horizon
  stays the full stream; only *live* state is bounded), ``keep_windows=k``
  drops windows older than ``k`` (state and horizon both bounded).
* :class:`SlidingRetention` — a sliding horizon of ``panes`` sub-windows
  of ``pane_events`` each; queries always cover the last
  ``panes × pane_events`` events (pane-granular), the standard paned
  approximation of a sliding window.

Because an archived view's counters merge exactly (Remark 2.4), the
"retained ⊕ live" horizon view the simulation reports is distributed
identically to a single cluster that simply never collapsed — windowing,
like sharding, is free in accuracy over the horizon it keeps.

>>> policy = TumblingRetention(window_events=1000)
>>> [p for p in (0, 999, 1000, 1500, 2000) if policy.is_boundary(p)]
[1000, 2000]
>>> policy.retained_windows is None
True
>>> SlidingRetention(pane_events=500, panes=4).retained_windows
4
"""

from __future__ import annotations

import abc
from typing import ClassVar

from repro.errors import ParameterError

__all__ = ["RetentionPolicy", "TumblingRetention", "SlidingRetention"]


class RetentionPolicy(abc.ABC):
    """When to collapse a window, and how many collapsed views to keep.

    Parameters
    ----------
    window_events:
        Events per window; a boundary fires every ``window_events``
        delivered events (before the event at that position is
        delivered, so each window holds exactly ``window_events``
        events).
    """

    #: Registry-style name for tables and configs.
    kind: ClassVar[str] = ""

    def __init__(self, window_events: int) -> None:
        if window_events < 1:
            raise ParameterError(
                f"window_events must be >= 1, got {window_events}"
            )
        self._window_events = window_events

    @property
    def window_events(self) -> int:
        """Events per collapsed window."""
        return self._window_events

    @property
    @abc.abstractmethod
    def retained_windows(self) -> int | None:
        """Archived views to keep (``None`` = keep every window)."""

    def is_boundary(self, position: int) -> bool:
        """Whether a window closes just before stream position ``position``."""
        return position > 0 and position % self._window_events == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(window_events={self._window_events}, "
            f"retained={self.retained_windows})"
        )


class TumblingRetention(RetentionPolicy):
    """Back-to-back fixed windows, optionally keeping only the last few.

    Parameters
    ----------
    window_events:
        Events per tumbling window.
    keep_windows:
        Archived views retained after each collapse; ``None`` keeps all
        (full-stream horizon, bounded live state), ``k`` bounds the
        horizon to ``k`` archived windows plus the live one.

    >>> TumblingRetention(100, keep_windows=2).retained_windows
    2
    """

    kind = "tumbling"

    def __init__(
        self, window_events: int, keep_windows: int | None = None
    ) -> None:
        super().__init__(window_events)
        if keep_windows is not None and keep_windows < 0:
            raise ParameterError(
                f"keep_windows must be >= 0 or None, got {keep_windows}"
            )
        self._keep_windows = keep_windows

    @property
    def retained_windows(self) -> int | None:
        return self._keep_windows


class SlidingRetention(RetentionPolicy):
    """Pane-based sliding horizon: the last ``panes`` sub-windows.

    The horizon slides forward one pane at a time — the classic
    approximation of a true sliding window, with staleness bounded by
    one pane.

    Parameters
    ----------
    pane_events:
        Events per pane (the collapse granularity).
    panes:
        Panes covered by the horizon; queries span
        ``panes × pane_events`` events plus the live pane.

    >>> policy = SlidingRetention(pane_events=250, panes=8)
    >>> policy.window_events, policy.retained_windows
    (250, 8)
    """

    kind = "sliding"

    def __init__(self, pane_events: int, panes: int) -> None:
        super().__init__(pane_events)
        if panes < 1:
            raise ParameterError(f"panes must be >= 1, got {panes}")
        self._panes = panes

    @property
    def panes(self) -> int:
        """Sub-windows covered by the sliding horizon."""
        return self._panes

    @property
    def retained_windows(self) -> int:
        return self._panes
