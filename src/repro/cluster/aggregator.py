"""Merge-tree aggregation: the cluster's read path.

Each ingest node holds a partial, per-key view of the traffic (a full view
for cold keys it homes, a slice for split hot keys).  The aggregator folds
the per-node counters for a key up a ``fanout``-ary merge tree — the shape
a distributed reduction would use, with ``ceil(log_fanout(n))`` rounds —
using :func:`~repro.core.merge.merge_all`, which Remark 2.4
guarantees is distribution-exact: the merged counter is statistically
identical to a single counter that ingested the global stream, so nothing
is lost in ε or δ by sharding.

Two query styles mirror :class:`~repro.analytics.sharding.ShardedCounter`:

* *scratch merges* (:meth:`global_estimate`, :meth:`global_view`) clone
  into fresh counters and leave the node banks untouched — the periodic
  "what does the world look like" query;
* *end-of-window collapse* (:meth:`collapse_window`) produces the final
  :class:`GlobalView` for the window and resets every node to an empty
  bank on a fresh window-derived seed, so the next window starts clean.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analytics.report import BankErrorReport, KeyError_
from repro.cluster.node import IngestNode
from repro.core.base import ApproximateCounter
from repro.core.merge import merge_all
from repro.errors import MergeError, ParameterError
from repro.memory.model import SpaceModel

__all__ = [
    "GlobalView",
    "MergeTreeAggregator",
    "merge_views",
    "tree_merge",
    "view_fingerprint",
]


def view_fingerprint(
    view: "GlobalView",
) -> tuple[dict[str, float], dict[str, int] | None]:
    """A comparable stamp of a view: per-key estimates plus truth.

    :class:`GlobalView` holds live counter objects (which compare by
    identity), so equality of *answers* — central vs gossiped, serial
    vs parallel, pre- vs post-recovery — is asserted on this
    fingerprint; it is the convention every bit-identity test in
    ``tests/cluster/`` uses.
    """
    return (
        {key: counter.estimate() for key, counter in view.counters.items()},
        dict(view.truth) if view.truth is not None else None,
    )


def tree_merge(
    counters: Sequence[ApproximateCounter], fanout: int
) -> tuple[ApproximateCounter, int]:
    """Fold counters up a ``fanout``-ary tree; returns ``(merged, rounds)``.

    Each group folds through :func:`~repro.core.merge.merge_all`, which
    clones before merging — so even single-counter input yields a fresh
    counter, never an alias of node state.  This is the one merge shape
    both read paths share: the central
    :class:`MergeTreeAggregator` and the decentralized gossip digests
    (:mod:`repro.cluster.gossip`) fold per-key counters exactly the same
    way, which is what makes a converged gossip read equal the central
    answer bit for bit on ``exact`` templates.
    """
    if fanout < 2:
        raise ParameterError(f"fanout must be >= 2, got {fanout}")
    level = list(counters)
    if len(level) == 1:
        return merge_all(level), 0
    rounds = 0
    while len(level) > 1:
        level = [
            merge_all(level[i : i + fanout])
            for i in range(0, len(level), fanout)
        ]
        rounds += 1
    return level[0], rounds


@dataclass(frozen=True)
class GlobalView:
    """The aggregator's merged, cluster-wide answer at one instant.

    Attributes
    ----------
    counters:
        One merged counter per key (fresh clones, safe to keep or mutate).
    truth:
        Exact global shadow counts, when every contributing bank tracked
        them (``None`` otherwise).
    merge_rounds:
        Depth of the merge tree that produced the widest key.
    epoch:
        Router topology epoch the view was captured under (0 for a
        never-rescaled cluster); lets consumers of archived window views
        tell which topology generation produced them.
    """

    counters: Mapping[str, ApproximateCounter]
    truth: Mapping[str, int] | None
    merge_rounds: int
    epoch: int = 0

    @property
    def n_keys(self) -> int:
        """Number of distinct keys in the view."""
        return len(self.counters)

    def estimate(self, key: str) -> float:
        """Merged estimate for ``key`` (0 for unseen keys)."""
        counter = self.counters.get(key)
        return counter.estimate() if counter is not None else 0.0

    def top_keys(self, k: int) -> list[tuple[str, float]]:
        """The ``k`` keys with the largest merged estimates, descending."""
        if k < 0:
            raise ParameterError(f"k must be non-negative, got {k}")
        return heapq.nsmallest(
            k,
            ((key, c.estimate()) for key, c in self.counters.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )

    def total_state_bits(
        self, model: SpaceModel = SpaceModel.AUTOMATON
    ) -> int:
        """State of the merged view (one counter per key), in bits."""
        return sum(c.state_bits(model) for c in self.counters.values())

    def error_report(self) -> BankErrorReport:
        """Per-key error statistics against the global shadow counts."""
        if self.truth is None:
            raise ParameterError(
                "global view has no shadow counts (a bank had "
                "track_truth=False)"
            )
        entries = [
            KeyError_(
                key=key,
                truth=self.truth.get(key, 0),
                estimate=counter.estimate(),
            )
            for key, counter in self.counters.items()
        ]
        return BankErrorReport.from_entries(
            entries, total_state_bits=self.total_state_bits()
        )


class MergeTreeAggregator:
    """Folds per-node banks into global answers via a merge tree.

    Parameters
    ----------
    nodes:
        The ingest nodes to aggregate over.
    fanout:
        Merge-tree arity; 2 models pairwise reduction rounds, larger
        values model wider aggregator machines.
    """

    def __init__(
        self,
        nodes: Sequence[IngestNode],
        fanout: int = 2,
        epoch: int = 0,
    ) -> None:
        if not nodes:
            raise ParameterError("aggregator needs at least one node")
        if fanout < 2:
            raise ParameterError(f"fanout must be >= 2, got {fanout}")
        self._nodes = list(nodes)
        self._fanout = fanout
        self._epoch = epoch

    @property
    def nodes(self) -> list[IngestNode]:
        """The aggregated nodes (live references)."""
        return list(self._nodes)

    @property
    def epoch(self) -> int:
        """Topology epoch stamped into produced views."""
        return self._epoch

    def set_nodes(
        self, nodes: Sequence[IngestNode], epoch: int | None = None
    ) -> None:
        """Swap the aggregated membership (elastic scaling, recovery).

        The simulation calls this whenever a node is added, removed, or
        replaced after a crash, passing the router's new epoch so views
        produced from here on are stamped with the topology generation
        that made them.
        """
        if not nodes:
            raise ParameterError("aggregator needs at least one node")
        self._nodes = list(nodes)
        if epoch is not None:
            self._epoch = epoch

    # ------------------------------------------------------------------
    # merge tree
    # ------------------------------------------------------------------
    def _tree_merge(
        self, counters: Sequence[ApproximateCounter]
    ) -> tuple[ApproximateCounter, int]:
        """Fold counters up the aggregator's tree (see :func:`tree_merge`)."""
        return tree_merge(counters, self._fanout)

    # ------------------------------------------------------------------
    # scratch-merge queries
    # ------------------------------------------------------------------
    def global_estimate(self, key: str) -> float:
        """Cluster-wide estimate for one key (non-destructive)."""
        counters = [
            bank.counter(key)
            for bank in (node.bank for node in self._nodes)
        ]
        present = [c for c in counters if c is not None]
        if not present:
            return 0.0
        merged, _ = self._tree_merge(present)
        return merged.estimate()

    def global_view(self) -> GlobalView:
        """Merge every key across all nodes (non-destructive).

        Nodes are flushed first so the view reflects all accepted
        traffic.  Since PR 9 this is a compatibility shim over the one
        blessed read surface: it routes through
        :class:`~repro.cluster.query.ClusterReader` with
        ``consistency="consistent"``, which pays for exactly this
        central fold (:meth:`_fold_view`) — so every caller of
        ``global_view()`` and every reader query answer from the same
        audited path, bit for bit.
        """
        from repro.cluster.query import ClusterReader

        reader = ClusterReader(self, consistency="consistent")
        return reader.raw_view()

    def _fold_view(self) -> GlobalView:
        """The central fold itself: flush every node, merge every key.

        :class:`~repro.cluster.query.ClusterReader` calls this on its
        consistent path; everything else should go through the reader
        (or the :meth:`global_view` shim).
        """
        for node in self._nodes:
            node.flush()
        per_key: dict[str, list[ApproximateCounter]] = {}
        for node in self._nodes:
            for key, counter in node.bank.items():
                per_key.setdefault(key, []).append(counter)
        track_truth = all(node.bank.tracks_truth for node in self._nodes)
        truth: dict[str, int] | None = {} if track_truth else None
        merged: dict[str, ApproximateCounter] = {}
        max_rounds = 0
        for key in sorted(per_key):
            try:
                merged[key], rounds = self._tree_merge(per_key[key])
            except MergeError as exc:
                raise MergeError(
                    f"cannot aggregate key {key!r}: {exc}"
                ) from exc
            max_rounds = max(max_rounds, rounds)
            if truth is not None:
                truth[key] = sum(
                    node.bank.truth(key)
                    for node in self._nodes
                    if key in node.bank
                )
        return GlobalView(
            counters=merged,
            truth=truth,
            merge_rounds=max_rounds,
            epoch=self._epoch,
        )

    # ------------------------------------------------------------------
    # end-of-window collapse
    # ------------------------------------------------------------------
    def collapse_window(self, window: int = 1) -> GlobalView:
        """Final view for the window, then reset every node to empty.

        Each node gets a fresh bank built from its template on a seed
        derived from the old bank's seed and ``window``, so successive
        windows are deterministic yet use unrelated random streams (the
        :meth:`~repro.analytics.sharding.ShardedCounter.reset` convention).
        """
        view = self.global_view()
        for node in self._nodes:
            node.reset(window)
        return view


def merge_views(views: Sequence[GlobalView]) -> GlobalView:
    """Merge several :class:`GlobalView`\\ s into one combined view.

    The retention layer uses this to assemble the cluster's *horizon*
    answer: archived window views plus the live view fold together
    per key via :func:`~repro.core.merge.merge_all`, which Remark 2.4
    guarantees is distribution-exact — so a windowed cluster's horizon
    estimate is distributed identically to one that never collapsed.

    Truth maps are summed when every input view carries one (``None``
    otherwise); ``merge_rounds`` reports the deepest input tree plus one
    extra cross-view round when views actually combined; ``epoch`` is
    the newest input epoch.

    Raises :class:`~repro.errors.ParameterError` on an empty sequence.
    """
    if not views:
        raise ParameterError("cannot merge an empty sequence of views")
    if len(views) == 1:
        return views[0]
    per_key: dict[str, list[ApproximateCounter]] = {}
    for view in views:
        for key, counter in view.counters.items():
            per_key.setdefault(key, []).append(counter)
    tracked = all(view.truth is not None for view in views)
    truth: dict[str, int] | None = {} if tracked else None
    merged: dict[str, ApproximateCounter] = {}
    combined = any(len(counters) > 1 for counters in per_key.values())
    for key in sorted(per_key):
        try:
            merged[key] = merge_all(per_key[key])
        except MergeError as exc:
            raise MergeError(
                f"cannot merge views at key {key!r}: {exc}"
            ) from exc
        if truth is not None:
            truth[key] = sum(
                view.truth.get(key, 0)
                for view in views
                if view.truth is not None
            )
    return GlobalView(
        counters=merged,
        truth=truth,
        merge_rounds=(
            max(view.merge_rounds for view in views) + (1 if combined else 0)
        ),
        epoch=max(view.epoch for view in views),
    )
