"""Stdlib-only HTTP/SSE frontend over :class:`~repro.cluster.query.ClusterReader`.

The serving layer the ROADMAP promised: "millions of readers" hit the
cluster over HTTP, answered from local gossip digests at a reported
staleness bound instead of forcing a central fold per read.  Built
entirely on :mod:`http.server` (``ThreadingHTTPServer`` — one thread
per connection, daemon threads), no third-party dependency.

Endpoints (all ``GET``; bodies are strict JSON via
:func:`~repro.cluster.entities.dump_strict_json` unless noted):

=====================  ==================================================
``/v1/keys/<key>``     one key's count (``KeyCount`` payload)
``/v1/topk``           the ``k`` heaviest keys (``TopK``; ``?k=10``)
``/v1/view``           the whole folded view (``ViewSnapshot``)
``/v1/stream``         Server-Sent Events pushing count updates
                       (``text/event-stream``; one ``event: count``
                       per changed key, data = ``KeyCount`` JSON)
``/healthz``           liveness + replica inventory
``/metrics``           Prometheus text exposition (PR-6 registry)
=====================  ==================================================

Every ``/v1`` endpoint takes ``?consistency=replica|consistent`` and
``?replica=<node id>`` query parameters, mapped straight onto the
reader's API; answers carry the reader's ``StalenessInfo`` stamp.
``/v1/stream`` additionally takes ``keys`` (comma-separated filter),
``limit`` (stop after N events — how tests and smoke scripts get a
terminating stream) and ``poll_ms`` (poll cadence, default 200).

The server only ever *reads* through the reader — the inertness
invariant (a served run is fingerprint-identical to an unserved one)
is pinned in ``tests/cluster/test_properties.py``.  Request handling
publishes ``http_requests_total{endpoint,status}`` counters and a
``query_seconds{endpoint}`` wall-clock histogram into the reader's
metrics registry, so ``/metrics`` reports the serving path's own load.
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Callable
from urllib.parse import parse_qs, unquote, urlparse

from repro.cluster.entities import READ_CONSISTENCY, dump_strict_json
from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.query import ClusterReader

__all__ = ["ClusterHTTPServer", "serve_http"]

#: Wall-clock histogram bounds for ``query_seconds`` (fast local reads).
_QUERY_SECONDS_BOUNDS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
)


def _bad_request(message: str) -> tuple[int, dict[str, Any]]:
    return 400, {"error": message}


class _Handler(BaseHTTPRequestHandler):
    """One request; the reader and registry hang off the server."""

    protocol_version = "HTTP/1.1"
    server: "ClusterHTTPServer"

    # Quiet by default: per-request stderr lines would interleave with
    # CLI table output; the registry's counters are the access log.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: Any) -> None:
        body = dump_strict_json(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, status: int, body: str, content_type: str
    ) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _read_params(
        self, query: dict[str, list[str]]
    ) -> tuple[str | None, int | None]:
        consistency = query.get("consistency", [None])[-1]
        replica_raw = query.get("replica", [None])[-1]
        replica: int | None = None
        if replica_raw is not None:
            try:
                replica = int(replica_raw)
            except ValueError:
                raise ParameterError(
                    f"replica must be an integer node id, got "
                    f"{replica_raw!r}"
                ) from None
        return consistency, replica

    def _count(self, endpoint: str, status: int) -> None:
        registry = self.server.registry
        if registry is not None:
            registry.inc(
                "http_requests_total",
                endpoint=endpoint,
                status=str(status),
            )

    def _observe(self, endpoint: str, seconds: float) -> None:
        registry = self.server.registry
        if registry is not None:
            registry.observe(
                "query_seconds", seconds, endpoint=endpoint
            )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server convention
        parsed = urlparse(self.path)
        path = parsed.path
        query = parse_qs(parsed.query)
        started = time.perf_counter()
        endpoint, handler = self._route(path)
        try:
            if handler is None:
                self._send_json(
                    404, {"error": f"unknown endpoint {path!r}"}
                )
                self._count(endpoint, 404)
                return
            status = handler(path, query)
        except ParameterError as exc:
            status, payload = _bad_request(str(exc))
            self._send_json(status, payload)
        except (BrokenPipeError, ConnectionResetError):
            # Client hung up mid-stream; nothing to answer.
            status = 499
        self._count(endpoint, status)
        self._observe(endpoint, time.perf_counter() - started)

    def _route(
        self, path: str
    ) -> tuple[
        str,
        Callable[[str, dict[str, list[str]]], int] | None,
    ]:
        if path.startswith("/v1/keys/"):
            return "keys", self._handle_key
        if path == "/v1/topk":
            return "topk", self._handle_topk
        if path == "/v1/view":
            return "view", self._handle_view
        if path == "/v1/stream":
            return "stream", self._handle_stream
        if path == "/healthz":
            return "healthz", self._handle_healthz
        if path == "/metrics":
            return "metrics", self._handle_metrics
        return "unknown", None

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _handle_key(
        self, path: str, query: dict[str, list[str]]
    ) -> int:
        key = unquote(path[len("/v1/keys/") :])
        if not key:
            raise ParameterError("missing key in /v1/keys/<key>")
        consistency, replica = self._read_params(query)
        answer = self.server.reader.get(key, consistency, replica)
        self._send_json(200, answer.to_payload())
        return 200

    def _handle_topk(
        self, path: str, query: dict[str, list[str]]
    ) -> int:
        consistency, replica = self._read_params(query)
        k_raw = query.get("k", ["10"])[-1]
        try:
            k = int(k_raw)
        except ValueError:
            raise ParameterError(
                f"k must be an integer, got {k_raw!r}"
            ) from None
        answer = self.server.reader.top_k(k, consistency, replica)
        self._send_json(200, answer.to_payload())
        return 200

    def _handle_view(
        self, path: str, query: dict[str, list[str]]
    ) -> int:
        consistency, replica = self._read_params(query)
        answer = self.server.reader.view(consistency, replica)
        self._send_json(200, answer.to_payload())
        return 200

    def _handle_healthz(
        self, path: str, query: dict[str, list[str]]
    ) -> int:
        reader = self.server.reader
        self._send_json(
            200,
            {
                "status": "ok",
                "replicas": list(reader.replicas),
                "consistency": list(READ_CONSISTENCY),
            },
        )
        return 200

    def _handle_metrics(
        self, path: str, query: dict[str, list[str]]
    ) -> int:
        render = self.server.metrics_render
        if render is None:
            self._send_json(
                404, {"error": "no metrics registry attached"}
            )
            return 404
        self._send_text(
            200, render(), "text/plain; version=0.0.4; charset=utf-8"
        )
        return 200

    def _handle_stream(
        self, path: str, query: dict[str, list[str]]
    ) -> int:
        consistency, replica = self._read_params(query)
        keys_raw = query.get("keys", [None])[-1]
        keys = (
            [k for k in keys_raw.split(",") if k]
            if keys_raw is not None
            else None
        )
        limit_raw = query.get("limit", [None])[-1]
        limit: int | None = None
        if limit_raw is not None:
            try:
                limit = int(limit_raw)
            except ValueError:
                raise ParameterError(
                    f"limit must be an integer, got {limit_raw!r}"
                ) from None
            if limit < 1:
                raise ParameterError(
                    f"limit must be >= 1, got {limit}"
                )
        poll_raw = query.get("poll_ms", ["200"])[-1]
        try:
            poll_s = max(int(poll_raw), 1) / 1000.0
        except ValueError:
            raise ParameterError(
                f"poll_ms must be an integer, got {poll_raw!r}"
            ) from None
        subscription = self.server.reader.subscribe(
            keys, consistency, replica
        )
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is open-ended: no Content-Length, close delimits.
        self.send_header("Connection", "close")
        self.end_headers()
        sent = 0
        while not self.server.closing:
            for update in subscription.poll():
                data = dump_strict_json(update.to_payload())
                self.wfile.write(
                    f"event: count\ndata: {data}\n\n".encode("utf-8")
                )
                sent += 1
                if limit is not None and sent >= limit:
                    break
            self.wfile.flush()
            if limit is not None and sent >= limit:
                break
            time.sleep(poll_s)
        return 200


class ClusterHTTPServer(ThreadingHTTPServer):
    """A background HTTP server bound to one :class:`ClusterReader`.

    Parameters
    ----------
    reader:
        The query API instance every endpoint answers through.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read the
        chosen one back from :attr:`port`).
    metrics_render:
        Zero-argument callable returning the Prometheus text
        exposition for ``/metrics`` (e.g. ``telemetry.
        render_prometheus``); defaults to the reader's registry's
        exposition when one is attached, else ``/metrics`` 404s.

    Use as a context manager, or :meth:`start` / :meth:`close`
    explicitly.  ``serve_forever`` runs on a daemon thread; request
    threads are daemons too, so a hung client never blocks shutdown.
    """

    daemon_threads = True

    def __init__(
        self,
        reader: "ClusterReader",
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_render: Callable[[], str] | None = None,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.reader = reader
        self.registry = reader._registry
        if self.registry is not None:
            self.registry.declare_histogram(
                "query_seconds", _QUERY_SECONDS_BOUNDS
            )
        if metrics_render is None and self.registry is not None:
            metrics_render = self.registry.render_prometheus
        self.metrics_render = metrics_render
        self.closing = False
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (useful after ``port=0``)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should hit."""
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "ClusterHTTPServer":
        """Serve on a background daemon thread; returns ``self``."""
        if self._thread is not None:
            raise ParameterError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever,
            name="cluster-httpd",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self.closing = True
        if self._thread is not None:
            self.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.server_close()

    def __enter__(self) -> "ClusterHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def serve_http(
    reader: "ClusterReader",
    host: str = "127.0.0.1",
    port: int = 0,
    metrics_render: Callable[[], str] | None = None,
) -> ClusterHTTPServer:
    """Start a background HTTP server over ``reader``; caller closes it."""
    server = ClusterHTTPServer(
        reader, host=host, port=port, metrics_render=metrics_render
    )
    return server.start()


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.cluster.httpd``: the fleet's query daemon.

    Launched by ``cluster serve query up`` (see
    :func:`repro.cluster.serve.query_up`): binds the HTTP socket over a
    :class:`~repro.cluster.serve.FleetReader`, then — only once bound,
    the readiness convention — writes the pidfile and the ``--record``
    JSON (which carries the actually-chosen port), and serves until
    ``SIGTERM``/``SIGINT``, unlinking both files on the way out.
    """
    import argparse
    import json
    import os
    import signal

    from repro.cluster.serve import FleetReader

    parser = argparse.ArgumentParser(
        prog="repro.cluster.httpd",
        description="HTTP/SSE query daemon over a worker fleet",
    )
    parser.add_argument(
        "--fleet-dir",
        required=True,
        help="cluster storage root holding the fleet under serve/",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    parser.add_argument(
        "--record",
        required=True,
        help="JSON record written after bind (the readiness marker)",
    )
    parser.add_argument(
        "--pidfile", required=True, help="written after bind"
    )
    parser.add_argument(
        "--worker-timeout",
        type=float,
        default=5.0,
        help="socket timeout per worker request",
    )
    args = parser.parse_args(argv)

    reader = FleetReader(args.fleet_dir, timeout=args.worker_timeout)
    server = ClusterHTTPServer(reader, host=args.host, port=args.port)

    def _exit(signum: int, frame: Any) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _exit)
    signal.signal(signal.SIGINT, _exit)
    with open(args.pidfile, "w", encoding="utf-8") as handle:
        handle.write(f"{os.getpid()}\n")
    record = {
        "version": 1,
        "pid": os.getpid(),
        "host": args.host,
        "port": server.port,
        "url": server.url,
        "fleet": args.fleet_dir,
    }
    with open(args.record, "w", encoding="utf-8") as handle:
        json.dump(record, handle, sort_keys=True, indent=2)
        handle.write("\n")
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        server.closing = True
        server.server_close()
        for path in (args.record, args.pidfile):
            try:
                os.unlink(path)
            except OSError:
                pass
    return 0


if __name__ == "__main__":  # pragma: no cover - daemon entrypoint
    raise SystemExit(main())
