"""Key routing: which ingest node owns which key's traffic.

The router assigns every key a *home node* through a pluggable
:class:`RoutingStrategy`, so routing is deterministic across processes
and sessions — the property that makes the whole cluster simulation
replayable — while the placement function itself can be swapped:

* :class:`ModuloHashStrategy` — stable hash (FNV-1a via
  :func:`~repro.analytics.counter_bank.stable_key_hash`, salted and
  re-mixed) modulo the node count.  On a topology change the router
  regenerates its salt, reshuffling *every* key onto the new node set —
  the simple "salt-regenerated stable-hash" rebalancing scheme.
* :class:`HashRingStrategy` — a consistent hash ring with virtual
  nodes.  Surviving nodes keep their ring points across topology
  changes, so growing or shrinking the cluster only moves the ``~1/n``
  of keys adjacent to the added or removed node's points.

Either way, moving a key between nodes is just a counter merge (Remark
2.4 of conf_pods_NelsonY22), so rebalancing costs nothing in accuracy —
see :mod:`repro.cluster.rebalance`.

Topology epochs
---------------
A :class:`ClusterRouter` owns a *topology epoch*: every membership
change (:meth:`ClusterRouter.set_nodes`, :meth:`ClusterRouter.add_node`,
:meth:`ClusterRouter.remove_node`) increments it.  Strategies that
declare ``reshuffles_on_epoch`` get a fresh epoch-derived salt each
time, and checkpoints record the epoch so a restored cluster can detect
a stale routing view.

Hot-key splitting
-----------------
A single scorching key would turn its home node into the cluster
bottleneck.  Keys marked hot (explicitly, or automatically once their
observed traffic passes ``hot_key_threshold`` increments) are instead
*split*: successive events for the key rotate round-robin over all
nodes, each of which grows its own counter for the key.  Remark 2.4
makes this free in accuracy — the aggregator's merged counter for the
key is distributed exactly as one counter that saw every event.

The auto-detection traffic table is *bounded*: it holds at most
``traffic_table_limit`` cold keys, evicting the coldest (deterministic
lowest-count-first, ties by key) when it overflows.  An unbounded table
would grow one entry per distinct key forever — a memory leak under
production-scale key cardinality.  Eviction only forgets partial
progress toward promotion; keys that stay in the table promote exactly
as before.
"""

from __future__ import annotations

import abc
import bisect
import heapq
from typing import Any, ClassVar, Iterable, Iterator

from repro.analytics.counter_bank import stable_key_hash
from repro.errors import ParameterError
from repro.rng.splitmix import derive_seed, mix64
from repro.stream.workload import KeyedEvent

__all__ = [
    "RoutingStrategy",
    "ModuloHashStrategy",
    "HashRingStrategy",
    "ClusterRouter",
    "StableHashRouter",
    "make_strategy",
]

_EPOCH_SALT_KEY = 0x65706F63  # "epoc"
_RING_POINT_KEY = 0x72696E67  # "ring"


class RoutingStrategy(abc.ABC):
    """Placement function: key hash × node set × salt → owning node.

    A strategy must be a pure function of its arguments (instances may
    cache derived structures, keyed by the arguments), so that two
    routers built the same way route identically — the cluster's
    determinism rests on it.
    """

    #: Registry name (used by :func:`make_strategy` and configs).
    name: ClassVar[str] = ""
    #: Whether the router should regenerate its salt on each topology
    #: epoch.  True for full-reshuffle schemes, False for schemes (like
    #: the consistent ring) whose stability across epochs is the point.
    reshuffles_on_epoch: ClassVar[bool] = False

    @abc.abstractmethod
    def owner(
        self, key_hash: int, nodes: tuple[int, ...], salt: int
    ) -> int:
        """The node id owning ``key_hash`` under this placement.

        Parameters
        ----------
        key_hash:
            64-bit stable hash of the key.
        nodes:
            Sorted tuple of live node ids (non-empty).
        salt:
            The router's current epoch salt.

        Returns
        -------
        int
            A member of ``nodes``.
        """


class ModuloHashStrategy(RoutingStrategy):
    """Salted stable hash modulo the node count.

    The classic stateless scheme: cheap, perfectly balanced in
    expectation, but a topology change remaps nearly every key (the
    router regenerates its salt per epoch, making the reshuffle explicit
    and deterministic).

    >>> strategy = ModuloHashStrategy()
    >>> nodes = (0, 1, 2, 3)
    >>> owner = strategy.owner(stable_key_hash("page-42"), nodes, salt=7)
    >>> owner in nodes
    True
    >>> owner == strategy.owner(stable_key_hash("page-42"), nodes, 7)
    True
    """

    name = "hash"
    reshuffles_on_epoch = True

    def owner(
        self, key_hash: int, nodes: tuple[int, ...], salt: int
    ) -> int:
        """Pick ``nodes[mix64(key_hash ^ salt) % len(nodes)]``."""
        return nodes[mix64(key_hash ^ salt) % len(nodes)]


class HashRingStrategy(RoutingStrategy):
    """Consistent hashing: nodes own arcs of a 64-bit ring.

    Each node contributes ``points_per_node`` pseudo-random ring points
    (virtual nodes, for load smoothing); a key belongs to the first node
    point clockwise of its own position.  Because a node's points depend
    only on the node id and the salt, adding or removing one node leaves
    every other node's points — and therefore ``~(n-1)/n`` of all key
    assignments — untouched.  That minimal movement is what makes
    incremental key migration cheap.

    Parameters
    ----------
    points_per_node:
        Virtual nodes per physical node; more points smooth the load
        split at the cost of a larger ring.
    """

    name = "ring"
    reshuffles_on_epoch = False

    def __init__(self, points_per_node: int = 64) -> None:
        if points_per_node < 1:
            raise ParameterError(
                f"points_per_node must be >= 1, got {points_per_node}"
            )
        self._points_per_node = points_per_node
        self._cache_key: tuple[tuple[int, ...], int] | None = None
        self._ring: list[tuple[int, int]] = []
        self._positions: list[int] = []

    @property
    def points_per_node(self) -> int:
        """Virtual nodes contributed by each physical node."""
        return self._points_per_node

    def _build_ring(self, nodes: tuple[int, ...], salt: int) -> None:
        """(Re)build the sorted ring for a (nodes, salt) pair, cached."""
        if self._cache_key == (nodes, salt):
            return
        ring = [
            (derive_seed(salt, _RING_POINT_KEY, node, replica), node)
            for node in nodes
            for replica in range(self._points_per_node)
        ]
        ring.sort()
        self._ring = ring
        self._positions = [position for position, _ in ring]
        self._cache_key = (nodes, salt)

    def owner(
        self, key_hash: int, nodes: tuple[int, ...], salt: int
    ) -> int:
        """First node point clockwise of the key's ring position."""
        self._build_ring(nodes, salt)
        point = mix64(key_hash ^ salt)
        index = bisect.bisect_right(self._positions, point)
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]


#: Strategy registry for configs and CLI flags.
ROUTING_STRATEGIES: dict[str, type[RoutingStrategy]] = {
    ModuloHashStrategy.name: ModuloHashStrategy,
    HashRingStrategy.name: HashRingStrategy,
}


def make_strategy(name: str, **params: object) -> RoutingStrategy:
    """Build a routing strategy by registry name.

    >>> make_strategy("hash").name
    'hash'
    >>> make_strategy("ring", points_per_node=8).points_per_node
    8
    """
    if name not in ROUTING_STRATEGIES:
        known = ", ".join(sorted(ROUTING_STRATEGIES))
        raise ParameterError(
            f"unknown routing strategy {name!r}; known: {known}"
        )
    return ROUTING_STRATEGIES[name](**params)  # type: ignore[arg-type]


class ClusterRouter:
    """Elastic key routing over an explicit node-id set.

    The router owns the live topology (a sorted tuple of node ids, not
    necessarily contiguous — removed ids leave gaps, added ids extend
    past the original range), the epoch counter, and the hot-key state;
    placement itself is delegated to a :class:`RoutingStrategy`.

    Parameters
    ----------
    nodes:
        Initial node ids (any iterable of distinct non-negative ints).
    strategy:
        Placement function; defaults to :class:`ModuloHashStrategy`,
        which reproduces the pre-elastic router bit for bit on a
        ``range(n)`` topology.
    hot_keys:
        Keys to split across all nodes from the start.
    hot_key_threshold:
        When set, any key whose routed traffic reaches this many
        increments is promoted to hot automatically.
    salt:
        Base salt; mixed into the hash so distinct routers (e.g.
        successive window generations) shuffle keys differently.
    traffic_table_limit:
        Maximum cold keys tracked by hot-key auto-detection (``None`` =
        unbounded, the pre-PR-3 behavior).  Past the limit the coldest
        half of the table is evicted, deterministically.

    >>> router = ClusterRouter([0, 1, 2])
    >>> router.route("page-1") == router.route("page-1")  # sticky
    True
    >>> router.epoch
    0
    >>> router.add_node()  # new id = max + 1; epoch advances
    3
    >>> router.epoch, router.nodes
    (1, (0, 1, 2, 3))
    """

    def __init__(
        self,
        nodes: Iterable[int],
        strategy: RoutingStrategy | None = None,
        hot_keys: Iterable[str] = (),
        hot_key_threshold: int | None = None,
        salt: int = 0,
        traffic_table_limit: int | None = 4096,
        registry: Any = None,
    ) -> None:
        if hot_key_threshold is not None and hot_key_threshold < 1:
            raise ParameterError(
                f"hot_key_threshold must be >= 1, got {hot_key_threshold}"
            )
        if traffic_table_limit is not None and traffic_table_limit < 1:
            raise ParameterError(
                "traffic_table_limit must be >= 1 or None, "
                f"got {traffic_table_limit}"
            )
        self._strategy = strategy if strategy is not None else ModuloHashStrategy()
        self._base_salt = salt
        self._salt = salt
        self._epoch = 0
        self._nodes: tuple[int, ...] = ()
        self._index: dict[int, int] = {}
        self._install(self._validated_ids(nodes))
        self._threshold = hot_key_threshold
        self._table_limit = traffic_table_limit
        #: hot key -> round-robin cursor
        self._hot: dict[str, int] = {key: 0 for key in hot_keys}
        #: observed increments per key (only kept while auto-detection is
        #: on; bounded by ``traffic_table_limit``)
        self._traffic: dict[str, int] = {}
        #: optional :class:`~repro.obs.MetricsRegistry` for promotion /
        #: eviction counters — rare events only, never per-route cost.
        self._registry = registry

    @staticmethod
    def _validated_ids(nodes: Iterable[int]) -> tuple[int, ...]:
        ids = tuple(sorted(nodes))
        if not ids:
            raise ParameterError("router needs at least one node")
        if len(set(ids)) != len(ids):
            raise ParameterError(f"duplicate node ids: {ids}")
        if ids[0] < 0:
            raise ParameterError(f"node ids must be >= 0, got {ids[0]}")
        return ids

    def _install(self, ids: tuple[int, ...]) -> None:
        self._nodes = ids
        self._index = {node: i for i, node in enumerate(ids)}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[int, ...]:
        """Sorted live node ids."""
        return self._nodes

    @property
    def n_nodes(self) -> int:
        """Number of ingest nodes routed over."""
        return len(self._nodes)

    @property
    def epoch(self) -> int:
        """Topology epoch: number of membership changes so far."""
        return self._epoch

    @property
    def salt(self) -> int:
        """The current epoch salt placement runs under."""
        return self._salt

    @property
    def strategy(self) -> RoutingStrategy:
        """The placement function in use."""
        return self._strategy

    @property
    def hot_keys(self) -> frozenset[str]:
        """Keys currently being split across all nodes."""
        return frozenset(self._hot)

    @property
    def traffic_table_limit(self) -> int | None:
        """Bound on the auto-detection traffic table (None = unbounded)."""
        return self._table_limit

    @property
    def traffic_table_size(self) -> int:
        """Cold keys currently tracked toward hot promotion."""
        return len(self._traffic)

    def home_node(self, key: str) -> int:
        """The key's stable home node (ignores hot-key splitting)."""
        return self._strategy.owner(
            stable_key_hash(key), self._nodes, self._salt
        )

    # ------------------------------------------------------------------
    # topology changes
    # ------------------------------------------------------------------
    def set_nodes(self, nodes: Iterable[int]) -> int:
        """Install a new node-id set; returns the (new) epoch.

        A no-op when the set is unchanged.  Otherwise the epoch
        advances, and strategies with ``reshuffles_on_epoch`` get a
        fresh salt derived from the base salt and the epoch.  Hot-key
        round-robin cursors survive (they rotate over whatever the
        current node list is).
        """
        ids = self._validated_ids(nodes)
        if ids == self._nodes:
            return self._epoch
        self._epoch += 1
        self._install(ids)
        if self._strategy.reshuffles_on_epoch:
            self._salt = derive_seed(
                self._base_salt, _EPOCH_SALT_KEY, self._epoch
            )
        return self._epoch

    def add_node(self, node_id: int | None = None) -> int:
        """Add one node (``max(nodes) + 1`` when unnamed); returns its id."""
        if node_id is None:
            node_id = self._nodes[-1] + 1
        if node_id in self._index:
            raise ParameterError(f"node {node_id} already routed")
        self.set_nodes(self._nodes + (node_id,))
        return node_id

    def remove_node(self, node_id: int) -> None:
        """Remove one node from the topology (at least one must remain)."""
        if node_id not in self._index:
            raise ParameterError(f"node {node_id} not in topology")
        if len(self._nodes) == 1:
            raise ParameterError("cannot remove the last node")
        self.set_nodes(tuple(n for n in self._nodes if n != node_id))

    def restore_topology(self, nodes: Iterable[int], epoch: int) -> None:
        """Install a *recovered* topology at its original epoch.

        Crash recovery from a persisted manifest (see
        :func:`~repro.cluster.simulation.recover_cluster`) must not
        advance the epoch — the membership is not changing, it is being
        re-learned — and the salt must come out exactly as the live
        router's did at that epoch, so every key routes to the same home
        it had before the crash.

        >>> live = ClusterRouter([0, 1], salt=9)
        >>> live.add_node()  # epoch 1, salt re-derived
        2
        >>> recovered = ClusterRouter([0], salt=9)
        >>> recovered.restore_topology(live.nodes, epoch=live.epoch)
        >>> (recovered.epoch, recovered.salt) == (live.epoch, live.salt)
        True
        """
        if epoch < 0:
            raise ParameterError(f"epoch must be >= 0, got {epoch}")
        self._install(self._validated_ids(nodes))
        self._epoch = epoch
        self._salt = (
            derive_seed(self._base_salt, _EPOCH_SALT_KEY, epoch)
            if self._strategy.reshuffles_on_epoch and epoch > 0
            else self._base_salt
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def mark_hot(self, key: str) -> None:
        """Split ``key``'s future traffic across all nodes."""
        self._hot.setdefault(key, 0)

    def route(self, key: str, count: int = 1) -> int:
        """The node that should ingest the next ``count`` increments.

        Hot keys rotate round-robin starting from their home node; cold
        keys always map to their home node.
        """
        if self._threshold is not None and key not in self._hot:
            seen = self._traffic.get(key, 0) + count
            self._traffic[key] = seen
            if seen >= self._threshold:
                self.mark_hot(key)
                del self._traffic[key]
                if self._registry is not None:
                    self._registry.inc("hot_keys_promoted_total")
                # Fall through: the promoting event already splits.
            elif (
                self._table_limit is not None
                and len(self._traffic) > self._table_limit
            ):
                self._evict_cold_traffic()
        cursor = self._hot.get(key)
        if cursor is None:
            return self.home_node(key)
        self._hot[key] = cursor + 1
        start = self._index[self.home_node(key)]
        return self._nodes[(start + cursor) % len(self._nodes)]

    def _evict_cold_traffic(self) -> None:
        """Shrink the traffic table to its hottest half, deterministically.

        Keeps the ``limit // 2`` entries with the highest counts (ties
        broken by key), so repeated overflow costs amortized
        ``O(log limit)`` per routed event instead of a sort per event.
        Evicted keys lose their partial progress toward promotion — the
        standard lossy-counting trade — but keys that survive promote
        with unchanged semantics.
        """
        keep = max(self._table_limit // 2, 1)
        evicted = len(self._traffic) - keep
        self._traffic = dict(
            heapq.nlargest(
                keep,
                self._traffic.items(),
                key=lambda item: (item[1], item[0]),
            )
        )
        if self._registry is not None and evicted > 0:
            self._registry.inc("traffic_evictions_total", evicted)

    def traffic_top(self, k: int) -> list[tuple[str, int]]:
        """The ``k`` hottest not-yet-promoted keys, by observed count.

        Deterministic (count descending, then key) and read-only — the
        public window onto the auto-detection traffic table that
        telemetry snapshots publish as gauges.

        >>> router = ClusterRouter([0], hot_key_threshold=100)
        >>> for _ in range(3):
        ...     _ = router.route("page-1")
        >>> _ = router.route("page-2")
        >>> router.traffic_top(2)
        [('page-1', 3), ('page-2', 1)]
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        ranked = heapq.nlargest(
            k,
            self._traffic.items(),
            key=lambda item: (item[1], item[0]),
        )
        return [(key, count) for key, count in ranked]

    def route_event(self, event: KeyedEvent) -> int:
        """Route one event (weighted by its ``count``)."""
        return self.route(event.key, max(event.count, 1))

    def partition(
        self, events: Iterable[KeyedEvent]
    ) -> Iterator[tuple[int, KeyedEvent]]:
        """Lazily annotate an event stream with its destination node."""
        for event in events:
            yield self.route_event(event), event

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(nodes={self._nodes}, "
            f"epoch={self._epoch}, strategy={self._strategy.name!r}, "
            f"hot={len(self._hot)}, salt={self._salt:#x})"
        )


class StableHashRouter(ClusterRouter):
    """Frozen-topology stable-hash router (the pre-elastic interface).

    Routes over ``range(n_nodes)`` with :class:`ModuloHashStrategy`;
    kept as the simple entry point for fixed deployments and for
    backward compatibility.  Use :class:`ClusterRouter` directly when
    the topology must change at runtime.

    >>> StableHashRouter(4, salt=5).route("k") == \\
    ...     StableHashRouter(4, salt=5).route("k")
    True
    """

    def __init__(
        self,
        n_nodes: int,
        hot_keys: Iterable[str] = (),
        hot_key_threshold: int | None = None,
        salt: int = 0,
        traffic_table_limit: int | None = 4096,
    ) -> None:
        if n_nodes < 1:
            raise ParameterError(f"n_nodes must be >= 1, got {n_nodes}")
        super().__init__(
            range(n_nodes),
            strategy=ModuloHashStrategy(),
            hot_keys=hot_keys,
            hot_key_threshold=hot_key_threshold,
            salt=salt,
            traffic_table_limit=traffic_table_limit,
        )
