"""Key routing: which ingest node owns which key's traffic.

The router assigns every key a *home node* by stable hash (FNV-1a via
:func:`~repro.analytics.counter_bank.stable_key_hash`, salted and
re-mixed), so routing is deterministic across processes and sessions —
the property that makes the whole cluster simulation replayable.

Hot-key splitting
-----------------
A single scorching key would turn its home node into the cluster
bottleneck.  Keys marked hot (explicitly, or automatically once their
observed traffic passes ``hot_key_threshold`` increments) are instead
*split*: successive events for the key rotate round-robin over all nodes,
each of which grows its own counter for the key.  Remark 2.4 makes this
free in accuracy — the aggregator's merged counter for the key is
distributed exactly as one counter that saw every event.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analytics.counter_bank import stable_key_hash
from repro.errors import ParameterError
from repro.rng.splitmix import mix64
from repro.stream.workload import KeyedEvent

__all__ = ["StableHashRouter"]


class StableHashRouter:
    """Stable-hash key routing over ``n_nodes``, with hot-key splitting.

    Parameters
    ----------
    n_nodes:
        Number of ingest nodes.
    hot_keys:
        Keys to split across all nodes from the start.
    hot_key_threshold:
        When set, any key whose routed traffic reaches this many
        increments is promoted to hot automatically.
    salt:
        Mixed into the hash so distinct routers (e.g. successive window
        generations) shuffle keys differently.
    """

    def __init__(
        self,
        n_nodes: int,
        hot_keys: Iterable[str] = (),
        hot_key_threshold: int | None = None,
        salt: int = 0,
    ) -> None:
        if n_nodes < 1:
            raise ParameterError(f"n_nodes must be >= 1, got {n_nodes}")
        if hot_key_threshold is not None and hot_key_threshold < 1:
            raise ParameterError(
                f"hot_key_threshold must be >= 1, got {hot_key_threshold}"
            )
        self._n_nodes = n_nodes
        self._salt = salt
        self._threshold = hot_key_threshold
        #: hot key -> round-robin cursor
        self._hot: dict[str, int] = {key: 0 for key in hot_keys}
        #: observed increments per key (only kept while auto-detection is on)
        self._traffic: dict[str, int] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of ingest nodes routed over."""
        return self._n_nodes

    @property
    def hot_keys(self) -> frozenset[str]:
        """Keys currently being split across all nodes."""
        return frozenset(self._hot)

    def home_node(self, key: str) -> int:
        """The key's stable home node (ignores hot-key splitting)."""
        return mix64(stable_key_hash(key) ^ self._salt) % self._n_nodes

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def mark_hot(self, key: str) -> None:
        """Split ``key``'s future traffic across all nodes."""
        self._hot.setdefault(key, 0)

    def route(self, key: str, count: int = 1) -> int:
        """The node that should ingest the next ``count`` increments.

        Hot keys rotate round-robin starting from their home node; cold
        keys always map to their home node.
        """
        if self._threshold is not None and key not in self._hot:
            seen = self._traffic.get(key, 0) + count
            self._traffic[key] = seen
            if seen >= self._threshold:
                self.mark_hot(key)
                del self._traffic[key]
                # Fall through: the promoting event already splits.
        cursor = self._hot.get(key)
        if cursor is None:
            return self.home_node(key)
        self._hot[key] = cursor + 1
        return (self.home_node(key) + cursor) % self._n_nodes

    def route_event(self, event: KeyedEvent) -> int:
        """Route one event (weighted by its ``count``)."""
        return self.route(event.key, max(event.count, 1))

    def partition(
        self, events: Iterable[KeyedEvent]
    ) -> Iterator[tuple[int, KeyedEvent]]:
        """Lazily annotate an event stream with its destination node."""
        for event in events:
            yield self.route_event(event), event

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StableHashRouter(n_nodes={self._n_nodes}, "
            f"hot={len(self._hot)}, salt={self._salt:#x})"
        )
