"""Execution plans: how the event stream reaches the ingest nodes.

The simulation's event loop is pluggable.  An :class:`ExecutionPlan`
owns the *delivery* of a routed stream — everything between "the next
:class:`~repro.stream.workload.KeyedEvent` exists" and "its owning
:class:`~repro.cluster.node.IngestNode` has buffered it" — while the
simulation keeps owning routing, checkpoints, crashes, scale events,
and retention.  Two plans ship:

* :class:`SerialPlan` (the default, ``ingest_workers=1``) — the
  historical single-threaded loop, extracted verbatim.  Route, append
  to the WAL, submit, maybe checkpoint, one event at a time.
* :class:`ParallelPlan` (``ingest_workers > 1``) — worker-sharded
  delivery.  The coordinator thread routes every event in stream order
  (hot-key round-robin cursors and topology epochs stay sequential),
  accumulates per-node batches of ``delivery_batch`` events, and hands
  each batch to a ``ThreadPoolExecutor`` worker that appends the
  events to the node's write-ahead log and applies them to the node's
  coalescing buffer.

Why the parallel plan is bit-identical to the serial one
--------------------------------------------------------
Three facts carry the proof:

1. **Per-node order is preserved.**  Batches for one node form a chain
   (each worker task waits for the node's previous batch), so every
   node sees exactly its serial sub-stream, in arrival order.  Nodes
   share no mutable state — a node's bank, buffer, and WAL segments
   are touched only by the one worker currently confined to it.
2. **Control decisions are pure functions of the routed stream.**
   Checkpoint positions (the periodic budget and the WAL segment
   fence) depend only on per-node delivered counts, which the
   coordinator tracks as it routes; it therefore fences at exactly
   the stream positions the serial loop would.
3. **Barriers drain.**  Retention boundaries, scale events, and
   crashes only run after a *drain handshake* — every dispatched
   batch applied, no worker in flight — so they observe exactly the
   state the serial loop would at that position, and recovery
   semantics (checkpoint + log replay) are untouched.

Merges being distribution-exact (Remark 2.4) is what makes this worth
having: sharding the stream over workers costs nothing in accuracy, so
a parallel run must reproduce the serial run's ``GlobalView`` bit for
bit on ``exact`` templates and identically at the same seed on every
template — ``tests/cluster/test_pipeline.py`` pins both.

Where the speedup comes from
----------------------------
Pure-Python counter updates serialize on the GIL, so worker-sharding
pays off where delivery *blocks*: durable ingest.  With a file-backed
store and group-commit fsync (``wal_fsync_every``), each node's worker
spends most of its time in ``os.fsync`` — which releases the GIL — so
N workers overlap N nodes' commit stalls instead of paying them
end-to-end on one thread (``benchmarks/bench_cluster.py --scenario
throughput`` measures exactly this).

>>> from repro.cluster.simulation import ClusterConfig
>>> make_plan(ClusterConfig(n_nodes=2)).name
'serial'
>>> plan = make_plan(ClusterConfig(n_nodes=2, ingest_workers=4))
>>> plan.name, plan.workers, plan.delivery_batch
('parallel', 4, 64)
"""

from __future__ import annotations

import abc
from collections import defaultdict
from concurrent.futures import Future, ThreadPoolExecutor
from threading import Lock
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ParameterError, StateError
from repro.stream.workload import KeyedEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cluster.simulation import (
        ClusterConfig,
        ClusterSimulation,
        NodeFailure,
        ScaleEvent,
    )

__all__ = ["ExecutionPlan", "SerialPlan", "ParallelPlan", "make_plan"]


def _index_schedule(
    config: "ClusterConfig",
) -> tuple[dict[int, list["ScaleEvent"]], dict[int, list["NodeFailure"]]]:
    """Position-indexed lookups for the config's scale/failure schedule."""
    scales: dict[int, list["ScaleEvent"]] = {}
    for scale in config.scale_events:
        scales.setdefault(scale.at_event, []).append(scale)
    failures: dict[int, list["NodeFailure"]] = {}
    for failure in config.failures:
        failures.setdefault(failure.at_event, []).append(failure)
    return scales, failures


class ExecutionPlan(abc.ABC):
    """Strategy for driving one event stream through a simulation.

    A plan may reorder *wall-clock* work however it likes, but must
    deliver every node's sub-stream in arrival order and run the
    scheduled barriers (retention boundary, gossip round, scale
    events, crashes — in that order, before the event at their
    position) against fully drained nodes, so that what the cluster
    computes stays a pure function of ``(config, stream)``.
    """

    #: Short name used in logs, reprs, and tests.
    name: str = "?"

    @abc.abstractmethod
    def execute(
        self,
        simulation: "ClusterSimulation",
        events: Iterable[KeyedEvent],
    ) -> None:
        """Deliver ``events``; returns when every event is buffered."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class SerialPlan(ExecutionPlan):
    """The historical single-threaded event loop, extracted.

    At one stream position the order is fixed: retention boundary,
    then gossip round, then scale events, then crashes, then the event
    itself — the contract every plan (and the determinism tests)
    relies on.
    """

    name = "serial"

    def execute(
        self,
        simulation: "ClusterSimulation",
        events: Iterable[KeyedEvent],
    ) -> None:
        config = simulation.config
        scales, failures = _index_schedule(config)
        retention = config.retention
        position = 0
        for event in events:
            if retention is not None and retention.is_boundary(position):
                simulation.collapse_window()
            if simulation.gossip_due(position):
                simulation.gossip_round()
            for scale in scales.get(position, ()):
                simulation.apply_scale(scale)
            for failure in failures.get(position, ()):
                simulation.apply_failure(failure)
            simulation.deliver_event(event)
            position += 1


class ParallelPlan(ExecutionPlan):
    """Worker-sharded delivery behind a sequential coordinator.

    The coordinator routes (stream order), batches per owning node,
    and decides checkpoints from its own delivered-count bookkeeping;
    ``workers`` pool threads apply the batches.  Per-node batches are
    chained — a batch's task first waits on the node's previous batch
    — so one node is only ever touched by one thread at a time, which
    each task also *verifies* with a non-blocking lock (a violation
    raises :class:`~repro.errors.StateError` instead of corrupting a
    bank).  Checkpoints, crashes, scale events, and window collapses
    fence through a drain handshake: dispatch what is pending, wait
    for the affected nodes' chains, then act.

    Profiling: when the simulation's telemetry is enabled, the
    coordinator times the ``route`` stage around each routing decision
    with its own thread-private
    :class:`~repro.obs.timers.StageTimer`; workers time ``deliver`` /
    ``bank_consume`` / ``fsync`` into theirs (see
    :meth:`~repro.cluster.simulation.ClusterSimulation.apply_events`).
    Per-worker timers are merged only at snapshot time, so the hot
    path takes no locks and disabled telemetry skips the clock reads
    entirely.
    """

    name = "parallel"

    def __init__(self, workers: int, delivery_batch: int = 64) -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if delivery_batch < 1:
            raise ParameterError(
                f"delivery_batch must be >= 1, got {delivery_batch}"
            )
        self._workers = workers
        self._delivery_batch = delivery_batch

    @property
    def workers(self) -> int:
        """Size of the node-worker thread pool."""
        return self._workers

    @property
    def delivery_batch(self) -> int:
        """Routed events accumulated per node before dispatch."""
        return self._delivery_batch

    def execute(
        self,
        simulation: "ClusterSimulation",
        events: Iterable[KeyedEvent],
    ) -> None:
        config = simulation.config
        scales, failures = _index_schedule(config)
        retention = config.retention
        segment = config.wal_segment_events
        wal = simulation.store.wal

        #: node id -> routed-but-undispatched events, in stream order.
        pending: dict[int, list[KeyedEvent]] = defaultdict(list)
        #: node id -> the tail of the node's batch chain.
        tails: dict[int, Future] = {}
        #: node id -> confinement guard asserting one-thread-per-node.
        locks: dict[int, Lock] = defaultdict(Lock)
        #: Coordinator's mirror of each node's retained WAL length —
        #: exact at every sync point, predictive in between (workers
        #: may lag).  This is what lets the coordinator fire the
        #: forced segment fence at the same stream position the serial
        #: loop would, without waiting on the workers.
        retained: dict[int, int] = {}

        def refresh_retained() -> None:
            retained.clear()
            for node in simulation.nodes:
                retained[node.node_id] = wal.retained_events(node.node_id)

        with ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-ingest"
        ) as executor:

            def dispatch(node_id: int) -> None:
                batch = pending[node_id]
                if not batch:
                    return
                pending[node_id] = []
                previous = tails.get(node_id)
                lock = locks[node_id]

                def apply_batch(
                    node_id: int = node_id,
                    batch: list[KeyedEvent] = batch,
                    previous: Future | None = previous,
                    lock: Lock = lock,
                ) -> None:
                    if previous is not None:
                        # Order handshake: the node's prior batch must
                        # land first (re-raises its failure, if any).
                        previous.result()
                    if not lock.acquire(blocking=False):
                        raise StateError(
                            f"node {node_id} batch applied concurrently; "
                            "per-node delivery must be thread-confined"
                        )
                    try:
                        simulation.apply_events(node_id, batch)
                    finally:
                        lock.release()

                tails[node_id] = executor.submit(apply_batch)

            def drain(node_ids: Sequence[int]) -> None:
                for node_id in node_ids:
                    dispatch(node_id)
                for node_id in node_ids:
                    future = tails.pop(node_id, None)
                    if future is not None:
                        future.result()

            def drain_all() -> None:
                drain(sorted(set(pending) | set(tails)))

            refresh_retained()
            telemetry = simulation.telemetry
            timed = telemetry.enabled
            route_timer = telemetry.stage_timer() if timed else None
            position = 0
            try:
                for event in events:
                    boundary = retention is not None and retention.is_boundary(
                        position
                    )
                    gossip_round = simulation.gossip_due(position)
                    position_scales = scales.get(position, ())
                    position_failures = failures.get(position, ())
                    if (
                        boundary
                        or gossip_round
                        or position_scales
                        or position_failures
                    ):
                        # Global fence: barriers act on drained nodes
                        # only, exactly like the serial loop's state at
                        # this position.  (A gossip round flushes every
                        # bank into its digest entry, so it must see no
                        # batch in flight.)
                        drain_all()
                        if boundary:
                            simulation.collapse_window()
                        if gossip_round:
                            simulation.gossip_round()
                        for scale in position_scales:
                            simulation.apply_scale(scale)
                        for failure in position_failures:
                            simulation.apply_failure(failure)
                        refresh_retained()
                    if timed:
                        start = perf_counter()
                        node_id = simulation.route_event(event)
                        route_timer.add(
                            "route", perf_counter() - start
                        )
                    else:
                        node_id = simulation.route_event(event)
                    pending[node_id].append(event)
                    retained[node_id] = retained.get(node_id, 0) + 1
                    checkpoint_due = simulation.record_delivery(
                        node_id, event.count
                    )
                    if checkpoint_due or (
                        segment is not None
                        and retained[node_id] >= segment
                        # A dead node's WAL grows past the segment bound
                        # on purpose: it is the pending replay queue, and
                        # fencing it would lose events.  The heal fences.
                        and not simulation.is_node_dead(node_id)
                    ):
                        # Per-node fence: only this node's chain must
                        # land before its checkpoint; the other nodes
                        # keep streaming.
                        drain((node_id,))
                        simulation.checkpoint_node(node_id)
                        retained[node_id] = 0
                    elif len(pending[node_id]) >= self._delivery_batch:
                        dispatch(node_id)
                    position += 1
                drain_all()
            except BaseException:
                # Unwind cleanly: queued batches must not keep applying
                # while the caller handles the failure (running ones
                # finish under the executor's shutdown).
                for future in tails.values():
                    future.cancel()
                raise


def make_plan(config: "ClusterConfig") -> ExecutionPlan:
    """The execution plan a config asks for.

    ``ingest_workers=1`` (the default) keeps the serial loop — the
    reference semantics every other plan must reproduce bit for bit.
    """
    if config.ingest_workers <= 1:
        return SerialPlan()
    return ParallelPlan(config.ingest_workers, config.delivery_batch)
