"""Execution plans: how the event stream reaches the ingest nodes.

The simulation's event loop is pluggable.  An :class:`ExecutionPlan`
owns the *delivery* of a routed stream — everything between "the next
:class:`~repro.stream.workload.KeyedEvent` exists" and "its owning
:class:`~repro.cluster.node.IngestNode` has buffered it" — while the
simulation keeps owning routing, checkpoints, crashes, scale events,
and retention.  Three plans ship, selected by name through
``PLAN_REGISTRY`` (``ClusterConfig.plan``; the default ``"auto"``
keeps the historical worker-count rule):

* :class:`SerialPlan` (``"serial"``) — the historical single-threaded
  loop, extracted verbatim.  Route, append to the WAL, submit, maybe
  checkpoint, one event at a time.
* :class:`ParallelPlan` (``"parallel"``) — worker-sharded delivery.
  The coordinator thread routes every event in stream order (hot-key
  round-robin cursors and topology epochs stay sequential),
  accumulates per-node batches of ``delivery_batch`` events, and hands
  each batch to a ``ThreadPoolExecutor`` worker that appends the
  events to the node's write-ahead log and applies them to the node's
  coalescing buffer.
* :class:`ProcessPlan` (``"process"``) — one OS worker process per
  node (a :class:`WorkerFleet` of ``python -m repro.cluster.worker``
  subprocesses fed over the checksummed frame protocol of
  :mod:`repro.cluster.transport`).  The coordinator still routes in
  stream order and keeps ALL durable state — WAL appends at route
  time, checkpoint saves (captured *in* the worker via the fence
  handshake), migration journal, manifest — so ``recover_cluster``
  and the torn-fence protocol apply unchanged; its in-process nodes
  become passive mirrors, resynced from worker snapshots at every
  barrier.  Scheduled crashes really ``SIGKILL`` the worker.

Why the parallel plan is bit-identical to the serial one
--------------------------------------------------------
Three facts carry the proof:

1. **Per-node order is preserved.**  Batches for one node form a chain
   (each worker task waits for the node's previous batch), so every
   node sees exactly its serial sub-stream, in arrival order.  Nodes
   share no mutable state — a node's bank, buffer, and WAL segments
   are touched only by the one worker currently confined to it.
2. **Control decisions are pure functions of the routed stream.**
   Checkpoint positions (the periodic budget and the WAL segment
   fence) depend only on per-node delivered counts, which the
   coordinator tracks as it routes; it therefore fences at exactly
   the stream positions the serial loop would.
3. **Barriers drain.**  Retention boundaries, scale events, and
   crashes only run after a *drain handshake* — every dispatched
   batch applied, no worker in flight — so they observe exactly the
   state the serial loop would at that position, and recovery
   semantics (checkpoint + log replay) are untouched.

Merges being distribution-exact (Remark 2.4) is what makes this worth
having: sharding the stream over workers costs nothing in accuracy, so
a parallel run must reproduce the serial run's ``GlobalView`` bit for
bit on ``exact`` templates and identically at the same seed on every
template — ``tests/cluster/test_pipeline.py`` pins both.

Where the speedup comes from
----------------------------
Pure-Python counter updates serialize on the GIL, so worker-sharding
pays off where delivery *blocks*: durable ingest.  With a file-backed
store and group-commit fsync (``wal_fsync_every``), each node's worker
spends most of its time in ``os.fsync`` — which releases the GIL — so
N workers overlap N nodes' commit stalls instead of paying them
end-to-end on one thread (``benchmarks/bench_cluster.py --scenario
throughput`` measures exactly this).

>>> from repro.cluster.simulation import ClusterConfig
>>> make_plan(ClusterConfig(n_nodes=2)).name
'serial'
>>> plan = make_plan(ClusterConfig(n_nodes=2, ingest_workers=4))
>>> plan.name, plan.workers, plan.delivery_batch
('parallel', 4, 64)
"""

from __future__ import annotations

import abc
import os
import subprocess
import sys
from collections import defaultdict
from concurrent.futures import Future, ThreadPoolExecutor
from threading import Lock
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.cluster.checkpoint import BankCheckpoint
from repro.cluster.node import IngestNode
from repro.cluster.rebalance import MigrationBatch
from repro.cluster.transport import FrameStream
from repro.errors import ParameterError, StateError
from repro.obs import Telemetry
from repro.stream.workload import KeyedEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cluster.simulation import (
        ClusterConfig,
        ClusterSimulation,
        NodeFailure,
        ScaleEvent,
    )

__all__ = [
    "ExecutionPlan",
    "SerialPlan",
    "ParallelPlan",
    "ProcessPlan",
    "WorkerFleet",
    "PLAN_NAMES",
    "PLAN_REGISTRY",
    "make_plan",
    "worker_environment",
]


def _index_schedule(
    config: "ClusterConfig",
) -> tuple[dict[int, list["ScaleEvent"]], dict[int, list["NodeFailure"]]]:
    """Position-indexed lookups for the config's scale/failure schedule."""
    scales: dict[int, list["ScaleEvent"]] = {}
    for scale in config.scale_events:
        scales.setdefault(scale.at_event, []).append(scale)
    failures: dict[int, list["NodeFailure"]] = {}
    for failure in config.failures:
        failures.setdefault(failure.at_event, []).append(failure)
    return scales, failures


class ExecutionPlan(abc.ABC):
    """Strategy for driving one event stream through a simulation.

    A plan may reorder *wall-clock* work however it likes, but must
    deliver every node's sub-stream in arrival order and run the
    scheduled barriers (retention boundary, gossip round, scale
    events, crashes — in that order, before the event at their
    position) against fully drained nodes, so that what the cluster
    computes stays a pure function of ``(config, stream)``.
    """

    #: Short name used in logs, reprs, and tests.
    name: str = "?"

    @abc.abstractmethod
    def execute(
        self,
        simulation: "ClusterSimulation",
        events: Iterable[KeyedEvent],
    ) -> None:
        """Deliver ``events``; returns when every event is buffered."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class SerialPlan(ExecutionPlan):
    """The historical single-threaded event loop, extracted.

    At one stream position the order is fixed: retention boundary,
    then gossip round, then scale events, then crashes, then the event
    itself — the contract every plan (and the determinism tests)
    relies on.
    """

    name = "serial"

    def execute(
        self,
        simulation: "ClusterSimulation",
        events: Iterable[KeyedEvent],
    ) -> None:
        config = simulation.config
        scales, failures = _index_schedule(config)
        retention = config.retention
        position = 0
        for event in events:
            if retention is not None and retention.is_boundary(position):
                simulation.collapse_window()
            if simulation.gossip_due(position):
                simulation.gossip_round()
            for scale in scales.get(position, ()):
                simulation.apply_scale(scale)
            for failure in failures.get(position, ()):
                simulation.apply_failure(failure)
            simulation.deliver_event(event)
            position += 1


class ParallelPlan(ExecutionPlan):
    """Worker-sharded delivery behind a sequential coordinator.

    The coordinator routes (stream order), batches per owning node,
    and decides checkpoints from its own delivered-count bookkeeping;
    ``workers`` pool threads apply the batches.  Per-node batches are
    chained — a batch's task first waits on the node's previous batch
    — so one node is only ever touched by one thread at a time, which
    each task also *verifies* with a non-blocking lock (a violation
    raises :class:`~repro.errors.StateError` instead of corrupting a
    bank).  Checkpoints, crashes, scale events, and window collapses
    fence through a drain handshake: dispatch what is pending, wait
    for the affected nodes' chains, then act.

    Profiling: when the simulation's telemetry is enabled, the
    coordinator times the ``route`` stage around each routing decision
    with its own thread-private
    :class:`~repro.obs.timers.StageTimer`; workers time ``deliver`` /
    ``bank_consume`` / ``fsync`` into theirs (see
    :meth:`~repro.cluster.simulation.ClusterSimulation.apply_events`).
    Per-worker timers are merged only at snapshot time, so the hot
    path takes no locks and disabled telemetry skips the clock reads
    entirely.
    """

    name = "parallel"

    def __init__(self, workers: int, delivery_batch: int = 64) -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if delivery_batch < 1:
            raise ParameterError(
                f"delivery_batch must be >= 1, got {delivery_batch}"
            )
        self._workers = workers
        self._delivery_batch = delivery_batch

    @property
    def workers(self) -> int:
        """Size of the node-worker thread pool."""
        return self._workers

    @property
    def delivery_batch(self) -> int:
        """Routed events accumulated per node before dispatch."""
        return self._delivery_batch

    def execute(
        self,
        simulation: "ClusterSimulation",
        events: Iterable[KeyedEvent],
    ) -> None:
        config = simulation.config
        scales, failures = _index_schedule(config)
        retention = config.retention
        segment = config.wal_segment_events
        wal = simulation.store.wal

        #: node id -> routed-but-undispatched events, in stream order.
        pending: dict[int, list[KeyedEvent]] = defaultdict(list)
        #: node id -> the tail of the node's batch chain.
        tails: dict[int, Future] = {}
        #: node id -> confinement guard asserting one-thread-per-node.
        locks: dict[int, Lock] = defaultdict(Lock)
        #: Coordinator's mirror of each node's retained WAL length —
        #: exact at every sync point, predictive in between (workers
        #: may lag).  This is what lets the coordinator fire the
        #: forced segment fence at the same stream position the serial
        #: loop would, without waiting on the workers.
        retained: dict[int, int] = {}

        def refresh_retained() -> None:
            retained.clear()
            for node in simulation.nodes:
                retained[node.node_id] = wal.retained_events(node.node_id)

        with ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-ingest"
        ) as executor:

            def dispatch(node_id: int) -> None:
                batch = pending[node_id]
                if not batch:
                    return
                pending[node_id] = []
                previous = tails.get(node_id)
                lock = locks[node_id]

                def apply_batch(
                    node_id: int = node_id,
                    batch: list[KeyedEvent] = batch,
                    previous: Future | None = previous,
                    lock: Lock = lock,
                ) -> None:
                    if previous is not None:
                        # Order handshake: the node's prior batch must
                        # land first (re-raises its failure, if any).
                        previous.result()
                    if not lock.acquire(blocking=False):
                        raise StateError(
                            f"node {node_id} batch applied concurrently; "
                            "per-node delivery must be thread-confined"
                        )
                    try:
                        simulation.apply_events(node_id, batch)
                    finally:
                        lock.release()

                tails[node_id] = executor.submit(apply_batch)

            def drain(node_ids: Sequence[int]) -> None:
                for node_id in node_ids:
                    dispatch(node_id)
                for node_id in node_ids:
                    future = tails.pop(node_id, None)
                    if future is not None:
                        future.result()

            def drain_all() -> None:
                drain(sorted(set(pending) | set(tails)))

            refresh_retained()
            telemetry = simulation.telemetry
            timed = telemetry.enabled
            route_cell = (
                telemetry.stage_timer().cell("route") if timed else None
            )
            position = 0
            try:
                for event in events:
                    boundary = retention is not None and retention.is_boundary(
                        position
                    )
                    gossip_round = simulation.gossip_due(position)
                    position_scales = scales.get(position, ())
                    position_failures = failures.get(position, ())
                    if (
                        boundary
                        or gossip_round
                        or position_scales
                        or position_failures
                    ):
                        # Global fence: barriers act on drained nodes
                        # only, exactly like the serial loop's state at
                        # this position.  (A gossip round flushes every
                        # bank into its digest entry, so it must see no
                        # batch in flight.)
                        drain_all()
                        if boundary:
                            simulation.collapse_window()
                        if gossip_round:
                            simulation.gossip_round()
                        for scale in position_scales:
                            simulation.apply_scale(scale)
                        for failure in position_failures:
                            simulation.apply_failure(failure)
                        refresh_retained()
                    if timed:
                        start = perf_counter()
                        node_id = simulation.route_event(event)
                        seconds = perf_counter() - start
                        route_cell[0] += 1
                        route_cell[1] += seconds
                        if seconds > route_cell[2]:
                            route_cell[2] = seconds
                    else:
                        node_id = simulation.route_event(event)
                    pending[node_id].append(event)
                    retained[node_id] = retained.get(node_id, 0) + 1
                    checkpoint_due = simulation.record_delivery(
                        node_id, event.count
                    )
                    if checkpoint_due or (
                        segment is not None
                        and retained[node_id] >= segment
                        # A dead node's WAL grows past the segment bound
                        # on purpose: it is the pending replay queue, and
                        # fencing it would lose events.  The heal fences.
                        and not simulation.is_node_dead(node_id)
                    ):
                        # Per-node fence: only this node's chain must
                        # land before its checkpoint; the other nodes
                        # keep streaming.
                        drain((node_id,))
                        simulation.checkpoint_node(node_id)
                        retained[node_id] = 0
                    elif len(pending[node_id]) >= self._delivery_batch:
                        dispatch(node_id)
                    position += 1
                drain_all()
            except BaseException:
                # Unwind cleanly: queued batches must not keep applying
                # while the caller handles the failure (running ones
                # finish under the executor's shutdown).
                for future in tails.values():
                    future.cancel()
                raise


def worker_environment() -> dict[str, str]:
    """Environment for a worker subprocess: this ``repro`` on the path.

    Prepends the package root the coordinator imported ``repro`` from,
    so ``python -m repro.cluster.worker`` resolves to the same code in
    a test checkout, an installed package, or a tox venv.
    """
    import repro

    root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        root + os.pathsep + existing if existing else root
    )
    return env


class WorkerFleet:
    """The coordinator's handle on a set of per-node worker processes.

    One pipe-mode ``python -m repro.cluster.worker`` subprocess per
    live node, addressed by node id.  The fleet speaks
    :mod:`repro.cluster.transport` frames and knows nothing about
    stream order or checkpoint policy — that is :class:`ProcessPlan`'s
    job; the fleet just moves state and batches between the
    coordinator's mirror nodes and the workers that own the live
    banks.
    """

    def __init__(self, timed: bool = False) -> None:
        self._timed = timed
        self._procs: dict[int, subprocess.Popen[bytes]] = {}
        self._streams: dict[int, FrameStream] = {}

    def node_ids(self) -> list[int]:
        """Ids with a live worker, ascending."""
        return sorted(self._streams)

    def spawn(self, node: IngestNode) -> None:
        """Launch and init one worker as a bit-copy of ``node``'s
        construction parameters (the live bank seed carries incarnation
        and window derivations with it)."""
        if node.node_id in self._streams:
            raise StateError(
                f"node {node.node_id} already has a worker process"
            )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cluster.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=worker_environment(),
        )
        stream = FrameStream(proc.stdout, proc.stdin)
        try:
            stream.request(
                "init",
                "ok",
                node_id=node.node_id,
                template=node.template.to_dict(),
                seed=node.bank.seed,
                buffer_limit=node.buffer_limit,
                track_truth=node.bank.tracks_truth,
                consume_mode=node.consume_mode,
                timed=self._timed,
            )
        except BaseException:
            proc.kill()
            proc.wait()
            stream.close()
            raise
        self._procs[node.node_id] = proc
        self._streams[node.node_id] = stream

    def deliver(
        self, node_id: int, batch: Sequence[KeyedEvent]
    ) -> None:
        """Ship one routed batch (pipelined: no reply expected)."""
        self._streams[node_id].send(
            "deliver_batch",
            events=[[event.key, event.count] for event in batch],
        )

    def drain(self, node_id: int) -> None:
        """Sync handshake: every shipped frame has been applied."""
        self._streams[node_id].request("drain", "drain_ack")

    def checkpoint(
        self,
        node_id: int,
        meta: dict[str, Any],
        topology: dict[str, Any],
    ) -> str:
        """Run the flush-and-capture half of a checkpoint in the
        worker; returns the encoded line for the coordinator to save."""
        reply = self._streams[node_id].request(
            "checkpoint_fence",
            "checkpoint_reply",
            meta=meta,
            topology=topology,
        )
        return str(reply["line"])

    def pull(self, node_id: int, mirror: IngestNode) -> None:
        """Flush the worker and adopt its full state into ``mirror``."""
        reply = self._streams[node_id].request(
            "snapshot_request", "snapshot_reply", flush=True
        )
        mirror.adopt_bank(BankCheckpoint.decode(reply["line"]).restore())
        mirror.install_volatile(reply["volatile"])

    def pull_all(self, mirrors: dict[int, IngestNode]) -> None:
        """Barrier pull: request every snapshot first (workers flush
        concurrently), then collect and adopt in id order."""
        ids = self.node_ids()
        for node_id in ids:
            self._streams[node_id].send("snapshot_request", flush=True)
        for node_id in ids:
            reply = self._streams[node_id].expect("snapshot_reply")
            mirror = mirrors[node_id]
            mirror.adopt_bank(
                BankCheckpoint.decode(reply["line"]).restore()
            )
            mirror.install_volatile(reply["volatile"])

    def push(self, node_id: int, mirror: IngestNode) -> None:
        """Install ``mirror``'s full state into the worker (crash
        recovery, window reset)."""
        line = BankCheckpoint.capture(
            mirror.bank, mirror.template, meta={"transfer": True}
        ).encode()
        self._streams[node_id].request(
            "adopt_state",
            "ok",
            line=line,
            volatile=mirror.export_volatile(),
        )

    def ship_batch(
        self,
        line: str,
        seed: int,
        mirrors: dict[int, IngestNode],
    ) -> None:
        """Replicate one migration batch into the fleet, in lockstep
        with the coordinator's in-process rebalance.

        The source worker drains the moved keys (discarding its reply
        — the coordinator's line is the authoritative wire record);
        the target worker absorbs the coordinator's line on the same
        ``(seed, epoch, key)``-derived streams as the mirror.  A
        scale-up target without a worker yet is spawned lazily and
        synced from its mirror first, covering batches the mirror
        already absorbed.
        """
        batch = MigrationBatch.decode(line)
        if batch.source in self._streams:
            self._streams[batch.source].request(
                "migrate_out",
                "migrate_reply",
                keys=sorted(batch.snapshots),
                target=batch.target,
                epoch=batch.epoch,
            )
        if batch.target not in self._streams:
            self.spawn(mirrors[batch.target])
            self.push(batch.target, mirrors[batch.target])
        self._streams[batch.target].request(
            "absorb", "ok", line=line, seed=seed
        )

    def kill(self, node_id: int) -> None:
        """SIGKILL one worker — the real crash injection."""
        proc = self._procs.pop(node_id)
        stream = self._streams.pop(node_id)
        proc.kill()
        proc.wait()
        stream.close()

    def collect_metrics(
        self, node_id: int, telemetry: Telemetry
    ) -> None:
        """Pull one worker's stage timings into the facade."""
        reply = self._streams[node_id].request(
            "metrics_pull", "metrics_reply"
        )
        telemetry.absorb_stages(reply["stages"])

    def shutdown(self, node_id: int) -> None:
        """Clean protocol exit for one worker."""
        proc = self._procs.pop(node_id)
        stream = self._streams.pop(node_id)
        try:
            stream.send("shutdown")
            stream.expect("bye")
        finally:
            stream.close()
            proc.wait()

    def reconcile(
        self, mirrors: dict[int, IngestNode], telemetry: Telemetry
    ) -> None:
        """Match the fleet to the live topology after a scale event:
        retire workers whose nodes left (salvaging their stage
        timings), spawn workers for nodes that joined."""
        live = set(mirrors)
        for node_id in sorted(set(self._streams) - live):
            self.collect_metrics(node_id, telemetry)
            self.shutdown(node_id)
        for node_id in sorted(live - set(self._streams)):
            self.spawn(mirrors[node_id])

    def shutdown_all(self, telemetry: Telemetry) -> None:
        """End-of-stream teardown: salvage metrics, then clean exits."""
        for node_id in self.node_ids():
            self.collect_metrics(node_id, telemetry)
        for node_id in self.node_ids():
            self.shutdown(node_id)

    def terminate(self) -> None:
        """Hard unwind (exception path): SIGKILL everything left."""
        for node_id in sorted(self._procs):
            proc = self._procs.pop(node_id)
            stream = self._streams.pop(node_id)
            proc.kill()
            proc.wait()
            stream.close()


class ProcessPlan(ExecutionPlan):
    """One OS process per node behind the checksummed wire protocol.

    The coordinator keeps the exact sequential skeleton of the other
    plans — it routes every event in stream order, appends it to the
    node's write-ahead log, and decides checkpoints from its own
    delivered-count bookkeeping — but delivery batches ship over pipes
    to per-node worker subprocesses (:mod:`repro.cluster.worker`),
    each owning the node's live bank.  The coordinator's
    ``simulation`` nodes become *mirrors*: passive twins synced from
    the workers at every barrier, which is what lets checkpoints,
    migrations, retention collapses, and crash recovery reuse the
    simulation's existing code paths unchanged.

    Division of authority:

    * **Workers** own compute state: bank, coalescing buffer, lifetime
      stats.  Frames per node arrive in stream order, so each worker
      replays exactly the serial loop's per-node sub-stream.
    * **The coordinator** owns all durable state: it WAL-appends every
      routed event (so recovery is complete without trusting a
      worker), saves checkpoint lines (captured *in* the worker via
      the :meth:`~repro.cluster.simulation.ClusterSimulation.
      set_checkpoint_capture` delegate), journals migration batches,
      and writes the manifest — ``recover_cluster`` and the torn-fence
      protocol are untouched.

    Crash injection is real: a scheduled failure SIGKILLs the worker
    process, the simulation recovers the mirror by the standard
    checkpoint + WAL-replay path, and a fresh worker is spawned and
    seeded with the recovered state.  On ``exact`` templates every
    sync point is bit-identical to the serial loop (RNG-free
    operations on identical state), so a process run's fingerprint
    equals the serial run's at the same seed — crashes, migrations,
    and retention included (pinned in
    ``tests/cluster/test_pipeline.py``).

    Unlike :class:`ParallelPlan` (which only overlaps GIL-releasing
    fsync stalls), worker processes run counter updates on separate
    interpreters — CPU-bound templates scale with cores.
    """

    name = "process"

    def __init__(self, delivery_batch: int = 64) -> None:
        if delivery_batch < 1:
            raise ParameterError(
                f"delivery_batch must be >= 1, got {delivery_batch}"
            )
        self._delivery_batch = delivery_batch

    @property
    def delivery_batch(self) -> int:
        """Routed events accumulated per node before dispatch."""
        return self._delivery_batch

    def execute(
        self,
        simulation: "ClusterSimulation",
        events: Iterable[KeyedEvent],
    ) -> None:
        config = simulation.config
        if config.aggregation == "gossip":  # pragma: no cover
            raise StateError(
                "ProcessPlan does not support gossip aggregation "
                "(refused at ClusterConfig construction)"
            )
        scales, failures = _index_schedule(config)
        retention = config.retention
        segment = config.wal_segment_events
        wal = simulation.store.wal
        telemetry = simulation.telemetry
        timed = telemetry.enabled
        if timed:
            timer = telemetry.stage_timer()
            route_cell = timer.cell("route")
            deliver_cell = timer.cell("deliver")

        #: node id -> routed-but-unshipped events, in stream order.
        pending: dict[int, list[KeyedEvent]] = defaultdict(list)
        #: Coordinator's mirror of each node's retained WAL length
        #: (see ParallelPlan) — drives the forced segment fence.
        retained: dict[int, int] = {}
        fleet = WorkerFleet(timed=timed)

        def mirrors() -> dict[int, IngestNode]:
            return {node.node_id: node for node in simulation.nodes}

        def refresh_retained() -> None:
            retained.clear()
            for node in simulation.nodes:
                retained[node.node_id] = wal.retained_events(
                    node.node_id
                )

        def dispatch(node_id: int) -> None:
            batch = pending[node_id]
            if batch:
                pending[node_id] = []
                fleet.deliver(node_id, batch)

        def dispatch_all() -> None:
            for node_id in sorted(pending):
                dispatch(node_id)

        def pull_all() -> None:
            dispatch_all()
            fleet.pull_all(mirrors())

        def capture_in_worker(
            node_id: int,
            meta: dict[str, Any],
            topology: dict[str, Any],
        ) -> str:
            return fleet.checkpoint(node_id, meta, topology)

        def barrier(
            boundary: bool,
            position_scales: Sequence["ScaleEvent"],
            position_failures: Sequence["NodeFailure"],
        ) -> None:
            """Run scheduled cluster operations at a drained position.

            Boundary collapses and scale events first sync the mirrors
            from the workers (pull-with-flush — the same stream
            position where the serial loop flushes), then run the
            simulation's own operation against the mirrors with the
            worker capture delegate *off* (the mirrors are the ground
            truth at a synced barrier), then re-sync the fleet.
            Crashes skip the pull on purpose: the WAL is the
            authoritative replay source, exactly as in a real death.
            """
            if boundary or position_scales:
                pull_all()
            simulation.set_checkpoint_capture(None)
            try:
                if boundary:
                    simulation.collapse_window()
                    # Every mirror was reset onto a fresh
                    # window-derived seed; push the reset state so
                    # workers resume bit-aligned (a full resync point
                    # even on approximate templates).
                    current = mirrors()
                    for node_id in fleet.node_ids():
                        fleet.push(node_id, current[node_id])
                for scale in position_scales:
                    simulation.set_migration_observer(
                        lambda line: fleet.ship_batch(
                            line, config.seed, mirrors()
                        )
                    )
                    try:
                        simulation.apply_scale(scale)
                    finally:
                        simulation.set_migration_observer(None)
                    fleet.reconcile(mirrors(), telemetry)
                for failure in position_failures:
                    node_id = failure.node_id
                    # Events already routed to the doomed node are in
                    # its WAL — recovery replays them into the mirror,
                    # so shipping them post-respawn would double-count.
                    pending[node_id].clear()
                    fleet.kill(node_id)
                    simulation.apply_failure(failure)
                    mirror = mirrors()[node_id]
                    fleet.spawn(mirror)
                    fleet.push(node_id, mirror)
            finally:
                simulation.set_checkpoint_capture(capture_in_worker)
            refresh_retained()

        for node in simulation.nodes:
            fleet.spawn(node)
        refresh_retained()
        simulation.set_checkpoint_capture(capture_in_worker)
        try:
            position = 0
            for event in events:
                boundary = (
                    retention is not None
                    and retention.is_boundary(position)
                )
                position_scales = scales.get(position, ())
                position_failures = failures.get(position, ())
                if boundary or position_scales or position_failures:
                    barrier(
                        boundary, position_scales, position_failures
                    )
                if timed:
                    started = perf_counter()
                    node_id = simulation.route_event(event)
                    routed = perf_counter()
                    wal.append(node_id, event)
                    appended = perf_counter()
                    seconds = routed - started
                    route_cell[0] += 1
                    route_cell[1] += seconds
                    if seconds > route_cell[2]:
                        route_cell[2] = seconds
                    seconds = appended - routed
                    deliver_cell[0] += 1
                    deliver_cell[1] += seconds
                    if seconds > deliver_cell[2]:
                        deliver_cell[2] = seconds
                else:
                    node_id = simulation.route_event(event)
                    wal.append(node_id, event)
                pending[node_id].append(event)
                retained[node_id] = retained.get(node_id, 0) + 1
                checkpoint_due = simulation.record_delivery(
                    node_id, event.count
                )
                if checkpoint_due or (
                    segment is not None
                    and retained[node_id] >= segment
                ):
                    # Per-node fence: drain this worker, then the
                    # checkpoint captures inside it via the delegate.
                    dispatch(node_id)
                    fleet.drain(node_id)
                    simulation.checkpoint_node(node_id)
                    retained[node_id] = 0
                elif len(pending[node_id]) >= self._delivery_batch:
                    dispatch(node_id)
                position += 1
            # End of stream: flush the fleet into the mirrors at the
            # same point the serial loop runs its final flush, salvage
            # the workers' stage timings, and exit cleanly.
            pull_all()
            fleet.shutdown_all(telemetry)
        except BaseException:
            fleet.terminate()
            raise
        finally:
            simulation.set_checkpoint_capture(None)
            simulation.set_migration_observer(None)


#: Execution-plan registry: name -> factory over the cluster config.
PLAN_REGISTRY: dict[
    str, Callable[["ClusterConfig"], ExecutionPlan]
] = {
    "serial": lambda config: SerialPlan(),
    "parallel": lambda config: ParallelPlan(
        config.ingest_workers, config.delivery_batch
    ),
    "process": lambda config: ProcessPlan(config.delivery_batch),
}

#: Valid explicit plan names (``"auto"`` additionally resolves by
#: worker count), for CLI choices and error messages.
PLAN_NAMES: tuple[str, ...] = tuple(sorted(PLAN_REGISTRY))


def make_plan(config: "ClusterConfig") -> ExecutionPlan:
    """The execution plan a config asks for.

    ``plan="auto"`` (the default) keeps the historical rule: the
    serial loop at ``ingest_workers=1`` — the reference semantics
    every other plan must reproduce bit for bit — and the thread
    parallel plan above.  Explicit names resolve through
    :data:`PLAN_REGISTRY`; unknown names fail loudly with the valid
    choices.
    """
    name = config.plan
    if name == "auto":
        name = "serial" if config.ingest_workers <= 1 else "parallel"
    factory = PLAN_REGISTRY.get(name)
    if factory is None:
        known = ", ".join(("auto", *PLAN_NAMES))
        raise ParameterError(
            f"unknown execution plan {name!r}; known: {known}"
        )
    return factory(config)
