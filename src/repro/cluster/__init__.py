"""The distributed counting cluster — §1's deployment, end to end.

The paper's motivating system keeps one approximate counter per key across
many machines.  This package composes the library's primitives into that
deployment:

* :class:`~repro.cluster.node.IngestNode` — a
  :class:`~repro.analytics.counter_bank.CounterBank` behind a coalescing
  write buffer (batched flushes ride the ``add`` fast-forward);
* :class:`~repro.cluster.router.StableHashRouter` — deterministic
  stable-hash key routing with hot-key splitting;
* :class:`~repro.cluster.aggregator.MergeTreeAggregator` — merge-tree
  aggregation of per-node banks into a :class:`~repro.cluster.aggregator.
  GlobalView`, exact by Remark 2.4 (scratch merges for periodic queries,
  destructive collapse at window end);
* :class:`~repro.cluster.checkpoint.BankCheckpoint` — whole-bank
  snapshot/restore built on :mod:`repro.core.codec`, so a crashed node
  recovers deterministically;
* :class:`~repro.cluster.simulation.ClusterSimulation` — the event-loop
  driver with failure injection, durable-log replay, and throughput /
  state-bits metrics.

Invariants the tier-1 tests pin down: merging loses nothing (an ``exact``
template cluster reproduces ground truth bit-for-bit, any template matches
a single-node run statistically), and checkpoint recovery is deterministic
(same config + same stream ⇒ identical estimates, crashes included).
"""

from repro.cluster.aggregator import GlobalView, MergeTreeAggregator
from repro.cluster.checkpoint import BankCheckpoint
from repro.cluster.node import CounterTemplate, IngestNode, default_template
from repro.cluster.router import StableHashRouter
from repro.cluster.simulation import (
    ClusterConfig,
    ClusterSimulation,
    NodeFailure,
    NodeStats,
    SimulationResult,
)

__all__ = [
    "BankCheckpoint",
    "ClusterConfig",
    "ClusterSimulation",
    "CounterTemplate",
    "GlobalView",
    "IngestNode",
    "MergeTreeAggregator",
    "NodeFailure",
    "NodeStats",
    "SimulationResult",
    "StableHashRouter",
    "default_template",
]
