"""The distributed counting cluster — §1's deployment, end to end.

The paper's motivating system keeps one approximate counter per key across
many machines.  This package composes the library's primitives into that
deployment:

* :class:`~repro.cluster.node.IngestNode` — a
  :class:`~repro.analytics.counter_bank.CounterBank` behind a coalescing
  write buffer (batched flushes ride the ``add`` fast-forward), with
  drain/absorb APIs for key migration;
* :class:`~repro.cluster.router.ClusterRouter` — deterministic key
  routing with hot-key splitting over a pluggable
  :class:`~repro.cluster.router.RoutingStrategy` (salted stable hash or
  consistent hash ring) and topology epochs for elastic membership;
* :mod:`~repro.cluster.rebalance` — incremental key migration between
  nodes as codec-serialized batches, exact by Remark 2.4;
* :mod:`~repro.cluster.retention` — tumbling / sliding window policies
  that bound a long-running cluster's state bits;
* :class:`~repro.cluster.aggregator.MergeTreeAggregator` — merge-tree
  aggregation of per-node banks into a :class:`~repro.cluster.aggregator.
  GlobalView`, exact by Remark 2.4 (scratch merges for periodic queries,
  destructive collapse at window end, :func:`~repro.cluster.aggregator.
  merge_views` to assemble retention horizons);
* :mod:`~repro.cluster.gossip` — the decentralized read path:
  per-node epoch-stamped partial-view digests exchanged in seeded
  push-pull rounds (``ClusterConfig.aggregation="gossip"``); a
  converged node's local view equals the central merge-tree answer
  bit for bit on ``exact`` templates;
* :mod:`~repro.cluster.membership` — self-healing membership on top of
  gossip (``ClusterConfig.membership=True``): per-node failure
  detection from digest round stamps, suspicion votes piggybacked on
  the exchanges, phase-based quorum confirmation, and automatic
  recover-or-rebalance-away healing of driver-killed nodes
  (``NodeFailure(heal=False)``) — deterministic and lossless;
* :class:`~repro.cluster.checkpoint.BankCheckpoint` — whole-bank
  snapshot/restore built on :mod:`repro.core.codec` and stamped with the
  capturing topology, so a crashed node recovers deterministically;
* :mod:`~repro.cluster.storage` — the pluggable durability layer:
  :class:`~repro.cluster.storage.CheckpointStore` (in-process
  ``MemoryStore`` or on-disk ``FileStore`` with atomic, checksummed
  records) plus the segmented :class:`~repro.cluster.storage.
  WriteAheadLog`, which bounds retained-log memory by forcing a fence
  checkpoint whenever a segment fills;
* :class:`~repro.cluster.simulation.ClusterSimulation` — the event-loop
  driver with failure injection, durable-log replay, scale events, and
  retention, plus throughput / state-bits metrics;
  :func:`~repro.cluster.simulation.recover_cluster` rebuilds a live
  simulation from a ``FileStore`` directory after process death;
* :mod:`~repro.cluster.pipeline` — pluggable execution plans for that
  loop, selected by name through a registry (``ClusterConfig.plan``):
  the serial reference path, worker-sharded thread delivery
  (``ClusterConfig.ingest_workers``), or one OS process per node
  (:class:`~repro.cluster.pipeline.ProcessPlan`) — all bit-identical
  to serial on exact templates;
* :mod:`~repro.cluster.transport` — the length-prefixed, checksummed,
  versioned frame protocol between the process-plan coordinator and
  its :mod:`~repro.cluster.worker` subprocesses;
  :mod:`~repro.cluster.serve` manages the long-running daemon shape of
  the same workers (the ``cluster serve`` CLI lifecycle);
* :mod:`~repro.cluster.query` — the one blessed read surface:
  :class:`~repro.cluster.query.ClusterReader` answers ``get`` /
  ``top_k`` / ``view`` / ``subscribe`` at a chosen consistency
  (``"replica"`` = pure gossip-digest read with an honest staleness
  stamp, ``"consistent"`` = the paid central fold) behind a
  stamp-invalidated read cache, returning the typed entities of
  :mod:`~repro.cluster.entities`; :mod:`~repro.cluster.httpd` serves
  the same API over HTTP/SSE (``--serve-http`` and the
  ``cluster serve query`` daemon — see ``docs/serving.md``);
* :mod:`repro.obs` (a sibling package) — the telemetry substrate every
  cluster layer publishes into: a metrics registry, a structured
  stream-position-stamped trace log, and delivery-path stage timers.
  Telemetry is provably inert — runs with it off, on, or file-sinked
  are bit-identical (see ``docs/observability.md``).

Invariants the tier-1 tests pin down: merging loses nothing (an ``exact``
template cluster reproduces ground truth bit-for-bit through routing,
rebalancing, and retention; any template matches a single-node run
statistically), and checkpoint recovery is deterministic (same config +
same stream ⇒ identical estimates, crashes and resizes included).
"""

from repro.cluster.aggregator import (
    GlobalView,
    MergeTreeAggregator,
    merge_views,
    tree_merge,
    view_fingerprint,
)
from repro.cluster.checkpoint import BankCheckpoint
from repro.cluster.entities import (
    READ_CONSISTENCY,
    KeyCount,
    StalenessInfo,
    TopK,
    ViewSnapshot,
    dump_strict_json,
)
from repro.cluster.gossip import (
    AGGREGATION_MODES,
    DigestEntry,
    GossipNetwork,
    NodeDigest,
)
from repro.cluster.membership import (
    ALIVE,
    CONFIRMED_DEAD,
    MEMBERSHIP_HEAL_MODES,
    SUSPECT,
    FailureDetector,
    MembershipView,
)
from repro.cluster.node import CounterTemplate, IngestNode, default_template
from repro.cluster.query import ClusterReader, Subscription
from repro.cluster.pipeline import (
    PLAN_NAMES,
    PLAN_REGISTRY,
    ExecutionPlan,
    ParallelPlan,
    ProcessPlan,
    SerialPlan,
    WorkerFleet,
    make_plan,
)
from repro.cluster.rebalance import (
    KeyMove,
    MigrationBatch,
    RebalancePlan,
    RebalanceReport,
    execute_rebalance,
    plan_rebalance,
)
from repro.cluster.retention import (
    RetentionPolicy,
    SlidingRetention,
    TumblingRetention,
)
from repro.cluster.router import (
    ClusterRouter,
    HashRingStrategy,
    ModuloHashStrategy,
    RoutingStrategy,
    StableHashRouter,
    make_strategy,
)
from repro.cluster.simulation import (
    ClusterConfig,
    ClusterSimulation,
    NodeFailure,
    NodeStats,
    ScaleEvent,
    SimulationResult,
    node_seed,
    recover_cluster,
)
from repro.cluster.storage import (
    STORAGE_BACKENDS,
    CheckpointStore,
    FileStore,
    MemoryStore,
    SegmentedLog,
    WriteAheadLog,
    make_store,
)

__all__ = [
    "AGGREGATION_MODES",
    "ALIVE",
    "BankCheckpoint",
    "CONFIRMED_DEAD",
    "CheckpointStore",
    "ClusterConfig",
    "ClusterReader",
    "ClusterRouter",
    "ClusterSimulation",
    "CounterTemplate",
    "DigestEntry",
    "ExecutionPlan",
    "FailureDetector",
    "FileStore",
    "GlobalView",
    "GossipNetwork",
    "HashRingStrategy",
    "IngestNode",
    "KeyCount",
    "KeyMove",
    "MEMBERSHIP_HEAL_MODES",
    "MembershipView",
    "MemoryStore",
    "MergeTreeAggregator",
    "MigrationBatch",
    "ModuloHashStrategy",
    "NodeDigest",
    "NodeFailure",
    "NodeStats",
    "PLAN_NAMES",
    "PLAN_REGISTRY",
    "ParallelPlan",
    "ProcessPlan",
    "READ_CONSISTENCY",
    "RebalancePlan",
    "RebalanceReport",
    "RetentionPolicy",
    "RoutingStrategy",
    "STORAGE_BACKENDS",
    "SUSPECT",
    "ScaleEvent",
    "SegmentedLog",
    "SerialPlan",
    "SimulationResult",
    "SlidingRetention",
    "StableHashRouter",
    "StalenessInfo",
    "Subscription",
    "TopK",
    "TumblingRetention",
    "ViewSnapshot",
    "WorkerFleet",
    "WriteAheadLog",
    "default_template",
    "dump_strict_json",
    "execute_rebalance",
    "make_plan",
    "make_store",
    "make_strategy",
    "merge_views",
    "node_seed",
    "plan_rebalance",
    "recover_cluster",
    "tree_merge",
    "view_fingerprint",
]
