"""E7 — mergeability (Remark 2.4): merged ≡ directly-run, in distribution.

For each counter family with a merge, the experiment runs many trials of:

* counter A on N₁ increments, counter B on N₂ increments, merge B into A;
* a control counter on N₁ + N₂ increments;

and compares the *distributions* of final states.  For Morris the control
distribution is available in closed form from the exact Flajolet DP, so
the comparison is a goodness-of-fit of the merged sample against exact
probabilities (χ² statistic); for the NY counters the comparison is
two-sample (total-variation distance of histograms), with the sampling
noise floor reported alongside.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.core.morris import MorrisCounter
from repro.core.nelson_yu import NelsonYuCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentContext
from repro.experiments.records import TextTable
from repro.rng.bitstream import BitBudgetedRandom
from repro.theory.flajolet import morris_state_distribution

__all__ = [
    "MergeConfig",
    "MorrisMergeResult",
    "run_morris_merge",
    "TwoSampleMergeResult",
    "run_simplified_merge",
    "run_nelson_yu_merge",
]


@dataclass(frozen=True, slots=True)
class MergeConfig:
    """Trial counts and split sizes."""

    n1: int = 300
    n2: int = 500
    trials: int = 4000


@dataclass(frozen=True, slots=True)
class MorrisMergeResult:
    """Merged-sample fit against the exact control distribution."""

    config: MergeConfig
    a: float
    chi_square: float
    degrees_of_freedom: int
    tv_distance_to_exact: float

    def table(self) -> str:
        """Render the fit."""
        table = TextTable(["quantity", "value"])
        table.add_row("Morris a", self.a)
        table.add_row("trials", self.config.trials)
        table.add_row("chi^2 vs exact DP", self.chi_square)
        table.add_row("degrees of freedom", self.degrees_of_freedom)
        table.add_row("TV distance to exact", self.tv_distance_to_exact)
        return table.render()

    @property
    def plausible(self) -> bool:
        """χ² within 5 standard deviations of its dof (loose sanity gate)."""
        dof = self.degrees_of_freedom
        return self.chi_square < dof + 5.0 * math.sqrt(2.0 * dof) + 5.0


def run_morris_merge(
    config: MergeConfig = MergeConfig(),
    a: float = 0.25,
    context: ExperimentContext = ExperimentContext(),
) -> MorrisMergeResult:
    """Validate the CY20 Morris merge against the exact DP."""
    if config.trials < 100:
        raise ExperimentError("need >= 100 trials for a meaningful fit")
    exact = morris_state_distribution(a, config.n1 + config.n2)
    counts: Counter[int] = Counter()
    root = BitBudgetedRandom(context.seed)
    for trial in range(config.trials):
        c1 = MorrisCounter(a, rng=root.split(trial, 1))
        c2 = MorrisCounter(a, rng=root.split(trial, 2))
        c1.add(config.n1)
        c2.add(config.n2)
        c1.merge_from(c2)
        counts[c1.x] += 1
    # χ² over levels with enough expected mass; pool the rest.
    chi = 0.0
    dof = -1
    pooled_expected = 0.0
    pooled_observed = 0
    tv = 0.0
    for level in range(len(exact)):
        expected = exact[level] * config.trials
        observed = counts.get(level, 0)
        tv += abs(expected - observed)
        if expected >= 5.0:
            chi += (observed - expected) ** 2 / expected
            dof += 1
        else:
            pooled_expected += expected
            pooled_observed += observed
    if pooled_expected > 0.0:
        chi += (pooled_observed - pooled_expected) ** 2 / max(
            pooled_expected, 1e-9
        )
        dof += 1
    return MorrisMergeResult(
        config=config,
        a=a,
        chi_square=chi,
        degrees_of_freedom=max(1, dof),
        tv_distance_to_exact=tv / (2.0 * config.trials),
    )


@dataclass(frozen=True, slots=True)
class TwoSampleMergeResult:
    """Two-sample comparison (merged vs direct) for one counter family."""

    label: str
    config: MergeConfig
    tv_distance: float
    noise_floor: float

    def table(self) -> str:
        """Render the comparison."""
        table = TextTable(["quantity", "value"])
        table.add_row("counter", self.label)
        table.add_row("trials per sample", self.config.trials)
        table.add_row("TV(merged, direct)", self.tv_distance)
        table.add_row("TV noise floor (direct vs direct)", self.noise_floor)
        return table.render()

    @property
    def consistent(self) -> bool:
        """Merged-vs-direct distance within 3x the same-size noise floor."""
        return self.tv_distance <= 3.0 * max(self.noise_floor, 1e-3)


def _tv(sample_a: list, sample_b: list) -> float:
    counts_a: Counter = Counter(sample_a)
    counts_b: Counter = Counter(sample_b)
    keys = set(counts_a) | set(counts_b)
    total = 0.0
    for key in keys:
        total += abs(
            counts_a.get(key, 0) / len(sample_a)
            - counts_b.get(key, 0) / len(sample_b)
        )
    return total / 2.0


def run_simplified_merge(
    config: MergeConfig = MergeConfig(),
    resolution: int = 16,
    context: ExperimentContext = ExperimentContext(),
) -> TwoSampleMergeResult:
    """Merged vs direct for the simplified-NY counter."""
    root = BitBudgetedRandom(context.seed + 1)
    merged_states = []
    direct_states = []
    control_states = []
    for trial in range(config.trials):
        c1 = SimplifiedNYCounter(
            resolution, mergeable=True, rng=root.split(trial, 1)
        )
        c2 = SimplifiedNYCounter(
            resolution, mergeable=True, rng=root.split(trial, 2)
        )
        c1.add(config.n1)
        c2.add(config.n2)
        c1.merge_from(c2)
        merged_states.append((c1.y, c1.t))
        direct = SimplifiedNYCounter(resolution, rng=root.split(trial, 3))
        direct.add(config.n1 + config.n2)
        direct_states.append((direct.y, direct.t))
        control = SimplifiedNYCounter(resolution, rng=root.split(trial, 4))
        control.add(config.n1 + config.n2)
        control_states.append((control.y, control.t))
    return TwoSampleMergeResult(
        label=f"simplified_ny(s={resolution})",
        config=config,
        tv_distance=_tv(merged_states, direct_states),
        noise_floor=_tv(direct_states, control_states),
    )


def run_nelson_yu_merge(
    config: MergeConfig = MergeConfig(),
    epsilon: float = 0.3,
    delta_exponent: int = 4,
    y_bucket_bits: int = 8,
    context: ExperimentContext = ExperimentContext(),
) -> TwoSampleMergeResult:
    """Merged vs direct for Algorithm 1 (full Remark 2.4 mechanism).

    The raw NY state space is large relative to affordable trial counts,
    so the comparison coarsens Y into ``2^y_bucket_bits``-wide buckets;
    (X, t) — which determine the query output — stay exact.  Pick counts
    large enough that the sampling rate drops below 1 (``t > 0``),
    otherwise both sides are deterministic and the test is vacuous.
    """
    root = BitBudgetedRandom(context.seed + 2)

    def coarse(c: NelsonYuCounter) -> tuple[int, int, int]:
        return (c.x, c.t, c.y >> y_bucket_bits)

    merged_states = []
    direct_states = []
    control_states = []
    for trial in range(config.trials):
        c1 = NelsonYuCounter(
            epsilon, delta_exponent, mergeable=True, rng=root.split(trial, 1)
        )
        c2 = NelsonYuCounter(
            epsilon, delta_exponent, mergeable=True, rng=root.split(trial, 2)
        )
        c1.add(config.n1)
        c2.add(config.n2)
        c1.merge_from(c2)
        merged_states.append(coarse(c1))
        direct = NelsonYuCounter(
            epsilon, delta_exponent, rng=root.split(trial, 3)
        )
        direct.add(config.n1 + config.n2)
        direct_states.append(coarse(direct))
        control = NelsonYuCounter(
            epsilon, delta_exponent, rng=root.split(trial, 4)
        )
        control.add(config.n1 + config.n2)
        control_states.append(coarse(control))
    return TwoSampleMergeResult(
        label=f"nelson_yu(eps={epsilon}, delta=2^-{delta_exponent})",
        config=config,
        tv_distance=_tv(merged_states, direct_states),
        noise_floor=_tv(direct_states, control_states),
    )
