"""E3/E4 — space and failure scaling (Theorems 1.1, 1.2 and 2.3).

The paper's headline is the δ dependence: the new algorithm (and the
re-analyzed Morris+) pays ``log log(1/δ)`` bits where the Chebyshev-tuned
Morris Counter pays ``log(1/δ)``.  Three sweeps make the shapes visible:

* **δ sweep** (fixed N, ε): measured max state bits of the NelsonYu
  counter and of optimally-tuned Morris+ vs. the *predicted register
  size* of Chebyshev Morris.  Expected: doubling ``log(1/δ)`` adds ≈ 1
  bit to the first two and ≈ doubles the δ-term of the third.
* **N sweep** (fixed ε, δ): all algorithms should grow ``log log N``.
* **failure check (E4)**: optimally-tuned Morris+ at its adversarially
  small ``a`` must empirically fail with probability ≤ δ (run at a δ
  large enough that failures are observable).

Measurements use the distribution-exact fast simulators; "measured bits"
for a trial is the bit-length of the largest state reached.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.estimators import morris_estimate
from repro.core.params import (
    DEFAULT_CHERNOFF_C,
    morris_a_chebyshev,
    morris_a_optimal,
    morris_transition_point,
)
from repro.errors import ExperimentError
from repro.experiments import fastsim
from repro.experiments.config import ExperimentContext
from repro.experiments.records import TextTable
from repro.theory.space import morris_space_bits

__all__ = [
    "DeltaSweepConfig",
    "DeltaSweepRow",
    "DeltaSweepResult",
    "run_delta_sweep",
    "NSweepConfig",
    "NSweepRow",
    "NSweepResult",
    "run_n_sweep",
    "FailureCheckConfig",
    "FailureCheckResult",
    "run_failure_check",
]


def _measure_nelson_yu_bits(
    epsilon: float, delta_exponent: int, n: int, trials: int, seed: int
) -> int:
    """Max over trials of the final-state bit size of Algorithm 1.

    The NY state is monotone over a run (X and the Y threshold only
    grow), so the final state's size is the run maximum.
    """
    worst = 0
    rng = fastsim.make_generator(seed, 0xE3, delta_exponent, n)
    for _ in range(trials):
        x, y, _ = fastsim.nelson_yu_final_state(
            epsilon, delta_exponent, DEFAULT_CHERNOFF_C, n, rng
        )
        worst = max(worst, max(1, x.bit_length()) + max(1, y.bit_length()))
    return worst


def _measure_morris_bits(a: float, n: int, trials: int, seed: int) -> int:
    """Max over trials of the bit-length of Morris(a)'s final X."""
    worst = 0
    rng = fastsim.make_generator(seed, 0xE3B, int(1.0 / a), n)
    for _ in range(trials):
        x = fastsim.morris_final_x(a, n, rng)
        worst = max(worst, max(1, x.bit_length()))
    return worst


@dataclass(frozen=True, slots=True)
class DeltaSweepConfig:
    """δ sweep at fixed N and ε."""

    n: int = 1 << 20
    epsilon: float = 0.25
    delta_exponents: tuple[int, ...] = (3, 5, 10, 17, 27, 40)
    trials: int = 30


@dataclass(frozen=True, slots=True)
class DeltaSweepRow:
    """Measured/predicted bits at one δ."""

    delta_exponent: int
    nelson_yu_bits: int
    morris_plus_bits: int
    chebyshev_register_bits: int


@dataclass(frozen=True, slots=True)
class DeltaSweepResult:
    """The δ sweep table (E3's headline comparison)."""

    config: DeltaSweepConfig
    rows: tuple[DeltaSweepRow, ...]

    def table(self) -> str:
        """Render the sweep."""
        table = TextTable(
            [
                "log2(1/delta)",
                "NelsonYu bits (meas.)",
                "Morris+ bits (meas.)",
                "Chebyshev-Morris bits (reg.)",
            ]
        )
        for row in self.rows:
            table.add_row(
                row.delta_exponent,
                row.nelson_yu_bits,
                row.morris_plus_bits,
                row.chebyshev_register_bits,
            )
        return table.render()

    def delta_slopes(self) -> tuple[float, float]:
        """Added bits per doubling of ``log(1/δ)`` for (NelsonYu, Chebyshev).

        Computed between the first and last sweep points; the paper
        predicts ≈ O(1) per doubling for NelsonYu and ≈ linear growth for
        the Chebyshev tuning.
        """
        first, last = self.rows[0], self.rows[-1]
        doublings = math.log2(last.delta_exponent / first.delta_exponent)
        if doublings <= 0:
            raise ExperimentError("sweep needs increasing delta exponents")
        ny = (last.nelson_yu_bits - first.nelson_yu_bits) / doublings
        cheb = (
            last.chebyshev_register_bits - first.chebyshev_register_bits
        ) / doublings
        return ny, cheb


def run_delta_sweep(
    config: DeltaSweepConfig = DeltaSweepConfig(),
    context: ExperimentContext = ExperimentContext(),
) -> DeltaSweepResult:
    """Measure the δ scaling of each algorithm's space."""
    rows = []
    for exponent in config.delta_exponents:
        delta = 2.0 ** -exponent
        ny_bits = _measure_nelson_yu_bits(
            config.epsilon, exponent, config.n, config.trials, context.seed
        )
        a_opt = morris_a_optimal(config.epsilon, delta)
        prefix_bits = max(
            1, (morris_transition_point(a_opt) + 1).bit_length()
        )
        mp_bits = prefix_bits + _measure_morris_bits(
            a_opt, config.n, config.trials, context.seed
        )
        a_cheb = morris_a_chebyshev(config.epsilon, delta)
        cheb_bits = morris_space_bits(a_cheb, config.n)
        rows.append(
            DeltaSweepRow(
                delta_exponent=exponent,
                nelson_yu_bits=ny_bits,
                morris_plus_bits=mp_bits,
                chebyshev_register_bits=cheb_bits,
            )
        )
    return DeltaSweepResult(config=config, rows=tuple(rows))


@dataclass(frozen=True, slots=True)
class NSweepConfig:
    """N sweep at fixed ε and δ."""

    n_values: tuple[int, ...] = (1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26)
    epsilon: float = 0.25
    delta_exponent: int = 10
    trials: int = 20


@dataclass(frozen=True, slots=True)
class NSweepRow:
    """Measured bits at one N."""

    n: int
    nelson_yu_bits: int
    morris_plus_bits: int
    exact_bits: int


@dataclass(frozen=True, slots=True)
class NSweepResult:
    """The N sweep table (log log N growth vs the exact counter's log N)."""

    config: NSweepConfig
    rows: tuple[NSweepRow, ...]

    def table(self) -> str:
        """Render the sweep."""
        table = TextTable(
            ["N", "NelsonYu bits", "Morris+ bits", "exact counter bits"]
        )
        for row in self.rows:
            table.add_row(
                row.n, row.nelson_yu_bits, row.morris_plus_bits, row.exact_bits
            )
        return table.render()


def run_n_sweep(
    config: NSweepConfig = NSweepConfig(),
    context: ExperimentContext = ExperimentContext(),
) -> NSweepResult:
    """Measure the N scaling of each algorithm's space."""
    delta = 2.0 ** -config.delta_exponent
    a_opt = morris_a_optimal(config.epsilon, delta)
    prefix_bits = max(1, (morris_transition_point(a_opt) + 1).bit_length())
    rows = []
    for n in config.n_values:
        ny_bits = _measure_nelson_yu_bits(
            config.epsilon,
            config.delta_exponent,
            n,
            config.trials,
            context.seed,
        )
        mp_bits = prefix_bits + _measure_morris_bits(
            a_opt, n, config.trials, context.seed
        )
        rows.append(
            NSweepRow(
                n=n,
                nelson_yu_bits=ny_bits,
                morris_plus_bits=mp_bits,
                exact_bits=max(1, n.bit_length()),
            )
        )
    return NSweepResult(config=config, rows=tuple(rows))


@dataclass(frozen=True, slots=True)
class FailureCheckConfig:
    """E4: empirical failure rate of Theorem 1.2's Morris+ tuning."""

    epsilon: float = 0.2
    delta: float = 0.05
    n: int = 200_000
    trials: int = 4000


@dataclass(frozen=True, slots=True)
class FailureCheckResult:
    """Empirical vs guaranteed failure probability."""

    config: FailureCheckConfig
    a: float
    failures: int
    trials: int

    @property
    def empirical_rate(self) -> float:
        """Observed fraction of trials with error > 2ε (the Thm 1.2 radius)."""
        return self.failures / self.trials

    def table(self) -> str:
        """Render the check."""
        table = TextTable(["quantity", "value"])
        table.add_row("a = eps^2 / (8 ln(1/delta))", self.a)
        table.add_row("trials", self.trials)
        table.add_row("failures (err > 2*eps)", self.failures)
        table.add_row("empirical failure rate", self.empirical_rate)
        table.add_row("guaranteed bound (2*delta)", 2.0 * self.config.delta)
        return table.render()


def run_failure_check(
    config: FailureCheckConfig = FailureCheckConfig(),
    context: ExperimentContext = ExperimentContext(),
) -> FailureCheckResult:
    """Estimate Morris+'s failure rate under the Theorem 1.2 tuning.

    Theorem 1.2's §2.2 proof gives a ``(1 ± 2ε)`` approximation with
    probability ``1 - 2δ`` for ``N > 8/a``; we count trials whose relative
    error exceeds 2ε.
    """
    a = morris_a_optimal(config.epsilon, config.delta)
    if config.n <= morris_transition_point(a):
        raise ExperimentError(
            "n must exceed the deterministic prefix 8/a for this check"
        )
    rng = fastsim.make_generator(context.seed, 0xE4)
    failures = 0
    for _ in range(config.trials):
        x = fastsim.morris_final_x(a, config.n, rng)
        estimate = morris_estimate(x, a)
        if abs(estimate - config.n) > 2.0 * config.epsilon * config.n:
            failures += 1
    return FailureCheckResult(
        config=config, a=a, failures=failures, trials=config.trials
    )
