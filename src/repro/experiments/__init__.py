"""Experiment harness — one module per paper artifact.

=======  ==============================================  ===================
ID       Paper artifact                                  Module
=======  ==============================================  ===================
E1       Figure 1 (relative-error CDFs, 17 bits)         ``figure1``
E2       Appendix A (Morris+ tweak necessity)            ``appendix_a``
E3/E4    Theorems 1.1/2.3/1.2 (space & failure scaling)  ``space_scaling``
E5       §1.1 / [Fla85] Prop. 3 (a=1 failure floor)      ``flajolet_floor``
E6       Theorem 3.1 (derandomize-and-pump)              ``lower_bound_exp``
E7       Remark 2.4 (mergeability)                       ``merge_exp``
E8       accuracy-space tradeoff at equal bit budgets    ``tradeoff``
E9       increment throughput                            ``throughput``
=======  ==============================================  ===================

Every experiment is a pure function from a config dataclass to a result
dataclass with a ``table()`` (and where meaningful ``plot()``) rendering.
Benchmarks under ``benchmarks/`` call these with reduced trial counts
(scaled by the ``REPRO_TRIALS_SCALE`` environment variable); EXPERIMENTS.md
records full-size runs.

The heavy Monte-Carlo experiments use :mod:`~repro.experiments.fastsim`, a
vectorized waiting-time simulator that is *distribution-exact* for the
counters involved (validated against both the slow implementations and the
exact DP in the tests).
"""

from repro.experiments.config import ExperimentContext, scaled_trials

__all__ = ["ExperimentContext", "scaled_trials"]
