"""Vectorized, distribution-exact waiting-time simulation.

The 5,000-trial, million-increment experiments (Figure 1 and the sweeps)
would take hours with per-survivor Python loops.  This module exploits the
same fact as the paper's §2.2 analysis: *while a counter's state is fixed,
its accept probability is constant*, so the raw-increment positions of the
next accepted increments are sums of i.i.d. geometric gaps, which numpy
samples in bulk.

Exactness: each simulator draws the identical sequence of random decisions
as the per-increment algorithm — geometric waiting times with the same
parameters, consumed against the same thresholds — so the *final-state
distribution is exactly that of the sequential algorithm* (no
approximation is introduced; tests validate every simulator against the
exact DP of :mod:`repro.theory.flajolet`).

All functions take a ``numpy.random.Generator`` (use
:func:`make_generator` for a seeded Philox stream, chosen for its
counter-based reproducibility guarantees across numpy versions).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.params import nelson_yu_alpha_raw, nelson_yu_x0
from repro.errors import BudgetError, ParameterError
from repro.rng.bernoulli import DyadicProbability
from repro.rng.splitmix import derive_seed

__all__ = [
    "make_generator",
    "morris_final_x",
    "simplified_final_state",
    "nelson_yu_final_state",
]


def make_generator(seed: int, *keys: int) -> np.random.Generator:
    """A seeded Philox generator; extra keys derive independent streams.

    Key derivation goes through the library's own SplitMix64 mixer so
    streams are deterministic and unrelated across (seed, keys) tuples.
    """
    return np.random.Generator(np.random.Philox(key=derive_seed(seed, *keys)))


def morris_final_x(a: float, n: int, rng: np.random.Generator) -> int:
    """Final Morris(a) state after ``n`` increments (exact in distribution).

    Draws the waiting times ``Z_i ~ Geometric((1+a)^{-i})`` of §2.2 in
    vectorized blocks and returns ``X = #{k : Σ_{i<k} Z_i <= n}``.
    """
    if a <= 0.0:
        raise ParameterError(f"a must be positive, got {a}")
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if n == 0:
        return 0
    log1pa = math.log1p(a)
    x = 0
    consumed = 0
    # Block size: expected states visited is log_{1+a}(a n + 1); sample a
    # bit extra, then extend if the (unlikely) overshoot happens.
    block = max(16, int(math.log1p(a * n) / log1pa) + 64)
    while True:
        levels = np.arange(x, x + block, dtype=np.float64)
        p = np.exp(-levels * log1pa)
        gaps = rng.geometric(p)
        cumulative = consumed + np.cumsum(gaps)
        advanced = int(np.searchsorted(cumulative, n, side="right"))
        x += advanced
        if advanced < block:
            return x
        consumed = int(cumulative[-1])


def simplified_final_state(
    resolution: int,
    t_max: int | None,
    n: int,
    rng: np.random.Generator,
) -> tuple[int, int]:
    """Final ``(Y, t)`` of the simplified-NY counter after ``n`` increments.

    Phase-by-phase: at rate ``2^-t`` the counter needs ``2s - Y`` more
    survivors to halve; their raw-increment cost is a sum of geometric
    gaps, drawn as one vector.  Mirrors
    :class:`repro.core.simplified_ny.SimplifiedNYCounter` exactly,
    including the :class:`~repro.errors.BudgetError` at capacity.
    """
    if resolution < 1:
        raise ParameterError(f"resolution must be >= 1, got {resolution}")
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    y, t = 0, 0
    remaining = n
    while remaining > 0:
        need = 2 * resolution - y
        if t == 0:
            take = min(remaining, need)
            y += take
            remaining -= take
        else:
            gaps = rng.geometric(2.0 ** -t, size=need)
            cumulative = np.cumsum(gaps)
            if cumulative[-1] <= remaining:
                remaining -= int(cumulative[-1])
                y = 2 * resolution
            else:
                survivors = int(
                    np.searchsorted(cumulative, remaining, side="right")
                )
                y += survivors
                remaining = 0
        if y >= 2 * resolution:
            if t_max is not None and t >= t_max:
                raise BudgetError(
                    f"capacity exhausted at t_max={t_max} "
                    f"(resolution={resolution}, n={n})"
                )
            y >>= 1
            t += 1
    return y, t


def nelson_yu_final_state(
    epsilon: float,
    delta_exponent: int,
    chernoff_c: float,
    n: int,
    rng: np.random.Generator,
) -> tuple[int, int, int]:
    """Final ``(X, Y, t)`` of Algorithm 1 after ``n`` increments.

    Mirrors :class:`repro.core.nelson_yu.NelsonYuCounter` epoch for epoch:
    same X0, same thresholds ``T = ceil((1+ε)^X)``, same dyadic rounding
    of α, same ``Y → Y >> Δt`` rescaling; only the per-survivor Bernoulli
    sequencing is replaced by vectorized geometric gaps.
    """
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    delta = 2.0 ** -delta_exponent
    log1pe = math.log1p(epsilon)
    x = nelson_yu_x0(epsilon, delta, chernoff_c)
    threshold = math.ceil(math.exp(x * log1pe))
    y, t = 0, 0
    remaining = n
    while remaining > 0:
        trigger = (threshold >> t) + 1
        need = trigger - y
        if t == 0:
            take = min(remaining, need)
            y += take
            remaining -= take
        else:
            gaps = rng.geometric(2.0 ** -t, size=need)
            cumulative = np.cumsum(gaps)
            if cumulative[-1] <= remaining:
                remaining -= int(cumulative[-1])
                y = trigger
            else:
                survivors = int(
                    np.searchsorted(cumulative, remaining, side="right")
                )
                y += survivors
                remaining = 0
        while (y << t) > threshold:
            x += 1
            threshold = math.ceil(math.exp(x * log1pe))
            alpha_raw = nelson_yu_alpha_raw(
                epsilon, delta, chernoff_c, x, threshold
            )
            t_new = max(t, DyadicProbability.at_least(alpha_raw).t)
            y >>= t_new - t
            t = t_new
    return x, y, t
