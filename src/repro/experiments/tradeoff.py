"""E8 — accuracy vs space at equal bit budgets.

The paper's practical pitch (§1) is bits-per-counter in large analytics
systems.  This experiment gives each algorithm the *same* state budget and
measures RMS relative error on the Figure 1 workload, sweeping the budget:

* Morris(a) with ``a`` fitted to the budget;
* the simplified Algorithm 1 fitted to the budget;
* Csűrös' floating-point counter fitted to the budget;
* the saturating deterministic counter (whose error at budget b is the
  deterministic truncation shortfall — the baseline that shows why one
  randomizes at all below log N bits).

Expected shape: the three randomized counters track each other closely
(the Figure 1 observation, generalized across budgets), their error
roughly halving per extra bit, while the deterministic baseline is useless
below ``log2 N`` bits and exact above.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.estimators import (
    csuros_estimate,
    morris_estimate,
    subsample_estimate,
)
from repro.core.params import (
    csuros_d_for_bits,
    morris_a_for_bits,
    simplified_ny_for_bits,
)
from repro.errors import ExperimentError, ParameterError
from repro.experiments import fastsim
from repro.experiments.config import ExperimentContext
from repro.experiments.records import TextTable

__all__ = ["TradeoffConfig", "TradeoffRow", "TradeoffResult", "run_tradeoff"]


@dataclass(frozen=True, slots=True)
class TradeoffConfig:
    """Budget sweep parameters."""

    bits_values: tuple[int, ...] = (12, 14, 16, 18, 20, 22)
    n_low: int = 500_000
    n_high: int = 999_999
    trials: int = 300


@dataclass(frozen=True, slots=True)
class TradeoffRow:
    """RMS relative errors at one bit budget (NaN = does not fit)."""

    bits: int
    morris_rms: float
    simplified_rms: float
    csuros_rms: float
    saturating_rms: float


@dataclass(frozen=True, slots=True)
class TradeoffResult:
    """The tradeoff table."""

    config: TradeoffConfig
    rows: tuple[TradeoffRow, ...]

    def table(self) -> str:
        """Render the sweep (RMS relative error, %)."""
        table = TextTable(
            [
                "bits",
                "Morris rms%",
                "SimplifiedNY rms%",
                "Csuros rms%",
                "Saturating rms%",
            ]
        )

        def cell(value: float) -> str:
            return "n/a" if math.isnan(value) else f"{100.0 * value:.4f}"

        for row in self.rows:
            table.add_row(
                row.bits,
                cell(row.morris_rms),
                cell(row.simplified_rms),
                cell(row.csuros_rms),
                cell(row.saturating_rms),
            )
        return table.render()


def _rms(errors: list[float]) -> float:
    return math.sqrt(math.fsum(e * e for e in errors) / len(errors))


def run_tradeoff(
    config: TradeoffConfig = TradeoffConfig(),
    context: ExperimentContext = ExperimentContext(),
) -> TradeoffResult:
    """Run the equal-budget error sweep."""
    if config.trials < 10:
        raise ExperimentError("need at least 10 trials")
    rows = []
    for bits in config.bits_values:
        n_rng = fastsim.make_generator(context.seed, 0xE8, bits)
        ns = [
            int(n_rng.integers(config.n_low, config.n_high + 1))
            for _ in range(config.trials)
        ]
        rows.append(
            TradeoffRow(
                bits=bits,
                morris_rms=_morris_rms(bits, ns, config, context),
                simplified_rms=_simplified_rms(bits, ns, config, context),
                csuros_rms=_csuros_rms(bits, ns, config, context),
                saturating_rms=_saturating_rms(bits, ns),
            )
        )
    return TradeoffResult(config=config, rows=tuple(rows))


def _morris_rms(
    bits: int,
    ns: list[int],
    config: TradeoffConfig,
    context: ExperimentContext,
) -> float:
    try:
        a = morris_a_for_bits(bits, config.n_high)
    except ParameterError:
        return float("nan")
    rng = fastsim.make_generator(context.seed, 0xE8, bits, 1)
    errors = []
    for n in ns:
        x = fastsim.morris_final_x(a, n, rng)
        errors.append(abs(morris_estimate(x, a) - n) / n)
    return _rms(errors)


def _simplified_rms(
    bits: int,
    ns: list[int],
    config: TradeoffConfig,
    context: ExperimentContext,
) -> float:
    try:
        fitted = simplified_ny_for_bits(bits, config.n_high)
    except ParameterError:
        return float("nan")
    rng = fastsim.make_generator(context.seed, 0xE8, bits, 2)
    errors = []
    for n in ns:
        y, t = fastsim.simplified_final_state(
            fitted.resolution, fitted.t_max, n, rng
        )
        errors.append(abs(subsample_estimate(y, t) - n) / n)
    return _rms(errors)


def _csuros_rms(
    bits: int,
    ns: list[int],
    config: TradeoffConfig,
    context: ExperimentContext,
) -> float:
    try:
        d = csuros_d_for_bits(bits, config.n_high)
    except ParameterError:
        return float("nan")
    rng = fastsim.make_generator(context.seed, 0xE8, bits, 3)
    errors = []
    for n in ns:
        x = _csuros_final_x(d, n, rng)
        errors.append(abs(csuros_estimate(x, d) - n) / n)
    return _rms(errors)


def _csuros_final_x(d: int, n: int, rng) -> int:
    """Waiting-time simulation for the Csűrös counter.

    At exponent ``e`` the counter accepts with rate ``2^-e`` for the next
    ``M - (X mod M)`` accepts (until the exponent bumps); identical gap
    logic to the other simulators.
    """
    import numpy as np

    m = 1 << d
    x = 0
    remaining = n
    while remaining > 0:
        e = x >> d
        until_bump = m - (x & (m - 1))
        if e == 0:
            take = min(remaining, until_bump)
            x += take
            remaining -= take
        else:
            gaps = rng.geometric(2.0 ** -e, size=until_bump)
            cumulative = np.cumsum(gaps)
            if cumulative[-1] <= remaining:
                remaining -= int(cumulative[-1])
                x += until_bump
            else:
                x += int(np.searchsorted(cumulative, remaining, side="right"))
                remaining = 0
    return x


def _saturating_rms(bits: int, ns: list[int]) -> float:
    cap = (1 << bits) - 1
    errors = [abs(min(n, cap) - n) / n for n in ns]
    return _rms(errors)
