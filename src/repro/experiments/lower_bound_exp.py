"""E6 — Theorem 3.1: derandomize-and-pump against real counters.

Two demonstrations:

1. **The attack works.**  Take the library's own counters as explicit
   automata at a given state budget, derandomize them (argmax
   transitions), and exhibit the pumping witness ``N₁ ≤ T/2`` vs.
   ``N₃ ∈ [2T, 4T]`` with identical memory state — the counter cannot
   answer both correctly.  Every randomized counter whose state space is
   ≤ √T states is broken.
2. **The quantitative edge.**  A deterministic counter survives T exactly
   when it avoids a state repeat within T/2, which needs ``> T/2`` states,
   i.e. ``S ≥ log2(T/2)`` bits: the exact counter's survival threshold
   matches :func:`repro.lowerbound.verify.min_bits_to_survive` bit for
   bit, which is the ``Ω(log T)`` of Eq. (7) with its constant visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.experiments.records import TextTable
from repro.lowerbound.automaton import (
    CounterAutomaton,
    csuros_automaton,
    exact_automaton,
    morris_automaton,
    simplified_ny_automaton,
)
from repro.lowerbound.verify import (
    LowerBoundReport,
    min_bits_to_survive,
    verify_theorem_3_1,
)

__all__ = [
    "LowerBoundConfig",
    "LowerBoundResult",
    "run_lower_bound",
    "SurvivalRow",
    "SurvivalResult",
    "run_survival_threshold",
]


@dataclass(frozen=True, slots=True)
class LowerBoundConfig:
    """Which automata to attack at which T."""

    t_param: int = 4096
    morris_a: float = 1.0
    morris_cap: int = 63
    simplified_resolution: int = 8
    simplified_t_cap: int = 7
    csuros_d: int = 3
    csuros_cap: int = 63


@dataclass(frozen=True, slots=True)
class LowerBoundResult:
    """Attack reports for each automaton."""

    config: LowerBoundConfig
    reports: tuple[LowerBoundReport, ...]

    @property
    def all_small_broken(self) -> bool:
        """True when every sub-√T automaton was broken, per the theorem."""
        threshold_bits = min_bits_to_survive(self.config.t_param)
        return all(
            r.broken for r in self.reports if r.state_bits < threshold_bits
        )

    def table(self) -> str:
        """Render the attack results."""
        table = TextTable(
            ["automaton", "state bits", "broken?", "N1", "N3", "shared query"]
        )
        for report in self.reports:
            w = report.witness
            table.add_row(
                report.label,
                report.state_bits,
                "yes" if report.broken else "no",
                w.n_small if w else "-",
                w.n_large if w else "-",
                f"{w.query_value:.4g}" if w else "-",
            )
        return table.render()


def run_lower_bound(
    config: LowerBoundConfig = LowerBoundConfig(),
) -> LowerBoundResult:
    """Attack the library's counters at one T."""
    if config.t_param < 16:
        raise ExperimentError("t_param too small to be interesting")
    automata: list[CounterAutomaton] = [
        morris_automaton(config.morris_a, config.morris_cap),
        simplified_ny_automaton(
            config.simplified_resolution, config.simplified_t_cap
        ),
        csuros_automaton(config.csuros_d, config.csuros_cap),
        exact_automaton(config.t_param // 8),  # too small: must break
        exact_automaton(4 * config.t_param),  # big enough: survives
    ]
    reports = tuple(
        verify_theorem_3_1(auto, config.t_param) for auto in automata
    )
    return LowerBoundResult(config=config, reports=reports)


@dataclass(frozen=True, slots=True)
class SurvivalRow:
    """Survival threshold at one T."""

    t_param: int
    predicted_bits: int
    smallest_surviving_cap_bits: int


@dataclass(frozen=True, slots=True)
class SurvivalResult:
    """Measured vs predicted Ω(log T) survival thresholds."""

    rows: tuple[SurvivalRow, ...]

    def table(self) -> str:
        """Render the threshold comparison."""
        table = TextTable(
            ["T", "predicted min bits (log2 T/2)", "measured min bits"]
        )
        for row in self.rows:
            table.add_row(
                row.t_param,
                row.predicted_bits,
                row.smallest_surviving_cap_bits,
            )
        return table.render()


def run_survival_threshold(
    t_values: tuple[int, ...] = (64, 256, 1024, 4096, 16384),
) -> SurvivalResult:
    """Find the smallest deterministic counter that survives each T.

    Scans exact counters with caps of increasing bit width; the smallest
    surviving width should match ``min_bits_to_survive(T)`` exactly.
    """
    rows = []
    for t_param in t_values:
        predicted = min_bits_to_survive(t_param)
        measured = None
        for bits in range(1, predicted + 3):
            cap = (1 << bits) - 1
            report = verify_theorem_3_1(exact_automaton(cap), t_param)
            if not report.broken:
                measured = bits
                break
        if measured is None:
            raise ExperimentError(
                f"no exact counter survived T={t_param} (internal error)"
            )
        rows.append(
            SurvivalRow(
                t_param=t_param,
                predicted_bits=predicted,
                smallest_surviving_cap_bits=measured,
            )
        )
    return SurvivalResult(rows=tuple(rows))
