"""E11 — randomness budgets (an extension beyond the paper).

The paper accounts for memory; this library additionally meters every
random bit a counter consumes (the coin-AND protocol of Remark 2.2 makes
the cost well-defined).  Two facts worth measuring:

* per-increment randomness is O(1) *expected* for every counter here —
  the early-exit coin protocol pays ~2 coins per increment regardless of
  t, and the accept probability decays geometrically, so total randomness
  is ~2N bits for N increments when incrementing one at a time;
* the geometric fast-forward spends only ~53 bits per *state change*, so
  ``add(N)`` needs ``O(polylog N)`` random bits total — an exponential
  saving that mirrors the space story.

This experiment tabulates measured bits for both drivers across
algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.base import ApproximateCounter
from repro.core.csuros import CsurosCounter
from repro.core.morris import MorrisCounter
from repro.core.nelson_yu import NelsonYuCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.errors import ExperimentError
from repro.experiments.records import TextTable
from repro.rng.bitstream import BitBudgetedRandom

__all__ = [
    "RandomnessConfig",
    "RandomnessRow",
    "RandomnessResult",
    "run_randomness_budget",
]


@dataclass(frozen=True, slots=True)
class RandomnessConfig:
    """Workload sizes for the randomness measurement."""

    increment_n: int = 20_000
    add_n: int = 5_000_000
    seed: int = 0


@dataclass(frozen=True, slots=True)
class RandomnessRow:
    """Measured random-bit budgets for one algorithm."""

    label: str
    increment_bits_per_op: float
    add_total_bits: int


@dataclass(frozen=True, slots=True)
class RandomnessResult:
    """The randomness budget table."""

    config: RandomnessConfig
    rows: tuple[RandomnessRow, ...]

    def table(self) -> str:
        """Render budgets."""
        table = TextTable(
            [
                "algorithm",
                f"bits/increment (N={self.config.increment_n})",
                f"total bits for add({self.config.add_n})",
            ]
        )
        for row in self.rows:
            table.add_row(
                row.label,
                f"{row.increment_bits_per_op:.2f}",
                f"{row.add_total_bits:,}",
            )
        return table.render()


def _families(
    seed: int,
) -> list[tuple[str, Callable[[BitBudgetedRandom], ApproximateCounter]]]:
    return [
        (
            "morris2 (a=1, coin protocol via machine)",
            None,  # handled specially below
        ),
        (
            "simplified_ny(s=4096)",
            lambda rng: SimplifiedNYCounter(4096, rng=rng),
        ),
        ("csuros(d=12)", lambda rng: CsurosCounter(12, rng=rng)),
        (
            "nelson_yu(eps=0.1, delta=2^-20)",
            lambda rng: NelsonYuCounter(0.1, 20, rng=rng),
        ),
        ("morris(a=2^-8)", lambda rng: MorrisCounter(2.0 ** -8, rng=rng)),
    ]


def run_randomness_budget(
    config: RandomnessConfig = RandomnessConfig(),
) -> RandomnessResult:
    """Measure random bits consumed by both update drivers."""
    if config.increment_n < 100 or config.add_n < 100:
        raise ExperimentError("workloads too small to measure")
    rows = []
    for label, factory in _families(config.seed):
        if factory is None:
            # The coin-protocol Morris machine: the purest Remark 2.2 case.
            from repro.machine.counters import Morris2Machine

            rng = BitBudgetedRandom(config.seed)
            machine = Morris2Machine.for_stream(config.increment_n, rng)
            for _ in range(config.increment_n):
                machine.increment()
            per_op = rng.bits_consumed / config.increment_n
            # No add() driver on the machine; report the per-increment
            # protocol extrapolated (documented as such by the 0 marker).
            rows.append(
                RandomnessRow(
                    label=label,
                    increment_bits_per_op=per_op,
                    add_total_bits=0,
                )
            )
            continue
        rng = BitBudgetedRandom(config.seed)
        counter = factory(rng)
        for _ in range(config.increment_n):
            counter.increment()
        per_op = rng.bits_consumed / config.increment_n

        rng = BitBudgetedRandom(config.seed + 1)
        counter = factory(rng)
        counter.add(config.add_n)
        rows.append(
            RandomnessRow(
                label=label,
                increment_bits_per_op=per_op,
                add_total_bits=rng.bits_consumed,
            )
        )
    return RandomnessResult(config=config, rows=tuple(rows))
