"""Shared experiment configuration.

Trial counts scale with the ``REPRO_TRIALS_SCALE`` environment variable so
the same harness serves three audiences:

* tests (small scale, seconds),
* ``pytest benchmarks/`` (default scale, minutes),
* full paper-size reruns (``REPRO_TRIALS_SCALE=1`` against the paper-size
  base counts, documented per experiment in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ExperimentError

__all__ = ["ExperimentContext", "scaled_trials", "trials_scale"]

_ENV_VAR = "REPRO_TRIALS_SCALE"


def trials_scale() -> float:
    """Current trial scale factor (default 1.0)."""
    raw = os.environ.get(_ENV_VAR)
    if raw is None:
        return 1.0
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ExperimentError(
            f"{_ENV_VAR} must be a number, got {raw!r}"
        ) from exc
    if scale <= 0.0:
        raise ExperimentError(f"{_ENV_VAR} must be positive, got {scale}")
    return scale


def scaled_trials(base: int, minimum: int = 10) -> int:
    """``base`` trials scaled by the environment, floored at ``minimum``."""
    if base < 1:
        raise ExperimentError(f"base trials must be >= 1, got {base}")
    return max(minimum, int(round(base * trials_scale())))


@dataclass(frozen=True, slots=True)
class ExperimentContext:
    """Seed and scale shared by one experiment invocation."""

    seed: int = 2020_10_06  # the paper's arXiv date
    scale: float | None = None

    def trials(self, base: int, minimum: int = 10) -> int:
        """Scaled trial count (explicit scale wins over the environment)."""
        if self.scale is not None:
            return max(minimum, int(round(base * self.scale)))
        return scaled_trials(base, minimum)
