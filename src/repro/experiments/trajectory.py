"""E12 — error trajectories across the stream (extension).

The paper's guarantees are per-query at any N; this experiment watches the
estimate *during* the stream: many trials of each counter over log-spaced
checkpoints from 1 to N, reporting the p90 relative-error envelope at each
checkpoint.  Expected shapes:

* Morris+ is exact (zero error) through its deterministic prefix, then
  jumps to its stationary ~``sqrt(a/2)`` relative noise;
* Algorithm 1 is exact through epoch 0, then bounded by its (1+ε)-grid
  quantization;
* the simplified counter's error grows to its stationary level as soon as
  subsampling starts (``N > 2s``).

This doubles as an integration test of the stream runner over realistic
trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.base import ApproximateCounter
from repro.core.morris_plus import MorrisPlusCounter
from repro.core.nelson_yu import NelsonYuCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentContext
from repro.experiments.plotting import ascii_series
from repro.experiments.records import TextTable
from repro.rng.bitstream import BitBudgetedRandom
from repro.stream.runner import run_counter
from repro.stream.source import TraceStream

__all__ = ["TrajectoryConfig", "TrajectoryResult", "run_trajectory"]


@dataclass(frozen=True, slots=True)
class TrajectoryConfig:
    """Trajectory sweep parameters."""

    n_max: int = 1_000_000
    points_per_decade: int = 2
    trials: int = 40
    epsilon: float = 0.1
    delta: float = 1e-4


@dataclass(frozen=True, slots=True)
class TrajectoryResult:
    """p90 relative error per checkpoint per algorithm."""

    config: TrajectoryConfig
    checkpoints: tuple[int, ...]
    envelopes: dict[str, tuple[float, ...]]

    def table(self) -> str:
        """Render the envelope table."""
        names = sorted(self.envelopes)
        table = TextTable(["N"] + [f"{name} p90 err" for name in names])
        for index, n in enumerate(self.checkpoints):
            table.add_row(
                n,
                *(f"{self.envelopes[name][index]:.4f}" for name in names),
            )
        return table.render()

    def plot(self, width: int = 72, height: int = 18) -> str:
        """Log-x scatter of the envelopes."""
        series = {
            name: [
                (float(n), err)
                for n, err in zip(self.checkpoints, envelope)
            ]
            for name, envelope in self.envelopes.items()
        }
        return ascii_series(series, width=width, height=height, logx=True)


def _families(
    config: TrajectoryConfig,
) -> dict[str, Callable[[BitBudgetedRandom], ApproximateCounter]]:
    return {
        "morris_plus": lambda rng: MorrisPlusCounter.for_optimal(
            config.epsilon, config.delta, rng=rng
        ),
        "nelson_yu": lambda rng: NelsonYuCounter.from_delta(
            config.epsilon, config.delta, rng=rng
        ),
        "simplified_ny": lambda rng: SimplifiedNYCounter.for_bits(
            17, config.n_max, rng=rng
        ),
    }


def run_trajectory(
    config: TrajectoryConfig = TrajectoryConfig(),
    context: ExperimentContext = ExperimentContext(),
) -> TrajectoryResult:
    """Measure p90 error envelopes over log-spaced checkpoints."""
    if config.trials < 5:
        raise ExperimentError("need at least 5 trials")
    source = TraceStream.geometric_grid(
        config.n_max, config.points_per_decade
    )
    checkpoints = source.points
    root = BitBudgetedRandom(context.seed)
    envelopes: dict[str, tuple[float, ...]] = {}
    for name, factory in _families(config).items():
        per_checkpoint: list[list[float]] = [[] for _ in checkpoints]
        for trial in range(config.trials):
            counter = factory(root.split(hash(name) & 0xFFFF, trial))
            result = run_counter(counter, source)
            for index, record in enumerate(result.checkpoints):
                per_checkpoint[index].append(record.relative_error)
        envelope = []
        for errors in per_checkpoint:
            errors.sort()
            rank = max(0, int(0.9 * len(errors)) - 1)
            envelope.append(errors[rank])
        envelopes[name] = tuple(envelope)
    return TrajectoryResult(
        config=config,
        checkpoints=checkpoints,
        envelopes=envelopes,
    )
