"""Result records and plain-text table rendering.

Every experiment renders to monospace text (this is a terminal-first
reproduction; the paper's single figure is reproduced as an ASCII CDF in
:mod:`~repro.experiments.plotting` plus the numeric table here).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError

__all__ = ["TextTable", "summarize", "Summary"]


class TextTable:
    """Minimal aligned text table builder."""

    def __init__(self, headers: Sequence[str]) -> None:
        if not headers:
            raise ExperimentError("table needs at least one column")
        self._headers = [str(h) for h in headers]
        self._rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append one row; cells are stringified (floats get %.6g)."""
        if len(cells) != len(self._headers):
            raise ExperimentError(
                f"expected {len(self._headers)} cells, got {len(cells)}"
            )
        rendered = [
            f"{c:.6g}" if isinstance(c, float) else str(c) for c in cells
        ]
        self._rows.append(rendered)

    def render(self) -> str:
        """Render with a header underline and right-padded columns."""
        widths = [len(h) for h in self._headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        lines = [fmt(self._headers), fmt(["-" * w for w in widths])]
        lines.extend(fmt(row) for row in self._rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    p50: float
    p90: float
    p99: float
    max: float


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of pre-sorted values."""
    if not sorted_values:
        raise ExperimentError("empty sample")
    rank = min(len(sorted_values) - 1, max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a sample of values (errors, bit counts, ...)."""
    if not values:
        raise ExperimentError("cannot summarize an empty sample")
    ordered = sorted(values)
    n = len(ordered)
    mean = math.fsum(ordered) / n
    variance = math.fsum((v - mean) ** 2 for v in ordered) / n
    return Summary(
        n=n,
        mean=mean,
        std=math.sqrt(variance),
        p50=_quantile(ordered, 0.50),
        p90=_quantile(ordered, 0.90),
        p99=_quantile(ordered, 0.99),
        max=ordered[-1],
    )
