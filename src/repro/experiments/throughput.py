"""E9 — update throughput (the practicality note of Remark 2.2).

Remark 2.2 argues that per-update processing cost matters less than stored
bits, but a reproduction should still show the counters are usable.  Two
measurements per algorithm:

* ``increment()`` — the honest per-update path (bit-metered Bernoulli);
* ``add(n)`` — the geometric fast-forward, measured as *stream positions
  per second* (it skips rejected increments, which is the point).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.core.base import ApproximateCounter
from repro.core.csuros import CsurosCounter
from repro.core.morris import MorrisCounter
from repro.core.nelson_yu import NelsonYuCounter
from repro.core.simplified_ny import SimplifiedNYCounter
from repro.errors import ExperimentError
from repro.experiments.records import TextTable

__all__ = ["ThroughputConfig", "ThroughputRow", "ThroughputResult", "run_throughput"]


@dataclass(frozen=True, slots=True)
class ThroughputConfig:
    """Workload sizes for the timing runs."""

    increment_ops: int = 20_000
    add_total: int = 2_000_000


@dataclass(frozen=True, slots=True)
class ThroughputRow:
    """Measured rates for one algorithm."""

    label: str
    increments_per_second: float
    add_positions_per_second: float


@dataclass(frozen=True, slots=True)
class ThroughputResult:
    """Throughput table."""

    config: ThroughputConfig
    rows: tuple[ThroughputRow, ...]

    def table(self) -> str:
        """Render rates in ops/second."""
        table = TextTable(["algorithm", "increment() ops/s", "add() positions/s"])
        for row in self.rows:
            table.add_row(
                row.label,
                f"{row.increments_per_second:,.0f}",
                f"{row.add_positions_per_second:,.0f}",
            )
        return table.render()


def _standard_counters(seed: int) -> list[tuple[str, Callable[[], ApproximateCounter]]]:
    return [
        ("morris(a=2^-8)", lambda: MorrisCounter(2.0 ** -8, seed=seed)),
        (
            "simplified_ny(s=4096)",
            lambda: SimplifiedNYCounter(4096, seed=seed),
        ),
        ("csuros(d=12)", lambda: CsurosCounter(12, seed=seed)),
        (
            "nelson_yu(eps=0.1)",
            lambda: NelsonYuCounter(0.1, 20, seed=seed),
        ),
    ]


def run_throughput(
    config: ThroughputConfig = ThroughputConfig(), seed: int = 0
) -> ThroughputResult:
    """Time each counter's update paths."""
    if config.increment_ops < 1000 or config.add_total < 1000:
        raise ExperimentError("workloads too small to time meaningfully")
    rows = []
    for label, factory in _standard_counters(seed):
        counter = factory()
        start = time.perf_counter()
        for _ in range(config.increment_ops):
            counter.increment()
        elapsed = time.perf_counter() - start
        inc_rate = config.increment_ops / max(elapsed, 1e-9)

        counter = factory()
        start = time.perf_counter()
        counter.add(config.add_total)
        elapsed = time.perf_counter() - start
        add_rate = config.add_total / max(elapsed, 1e-9)
        rows.append(
            ThroughputRow(
                label=label,
                increments_per_second=inc_rate,
                add_positions_per_second=add_rate,
            )
        )
    return ThroughputResult(config=config, rows=tuple(rows))
