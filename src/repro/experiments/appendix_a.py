"""E2 — Appendix A: the Morris+ tweak is necessary.

Appendix A proves that vanilla Morris(a) with the optimal tuning
``a = ε²/(8 ln(1/δ))`` fails with probability much larger than δ when the
count is the small adversarial value ``N' = c·ε^{4/3}/a`` (c ≤ 2^-8,
δ < ε^{8/3}c²/16).  Morris+ — which answers from its deterministic prefix
below ``8/a`` — is exact there.

Because the adversarial N is small (that is the whole point), the failure
probabilities are computed *exactly* from the Flajolet DP: no Monte Carlo
noise, the comparison against δ is airtight.  The experiment scans N from
1 to past ``8/a`` showing where vanilla Morris' one-sided failure
``P[N̂ < (1-ε)N]`` sits relative to δ, and that Morris+ is exact
(failure 0) throughout the deterministic phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import morris_a_optimal, morris_transition_point
from repro.errors import ExperimentError
from repro.experiments.records import TextTable
from repro.theory.failure import (
    appendix_a_adversarial_n,
    morris_low_failure_scan,
)

__all__ = ["AppendixAConfig", "AppendixARow", "AppendixAResult", "run_appendix_a"]


@dataclass(frozen=True, slots=True)
class AppendixAConfig:
    """Parameters of the Appendix A construction.

    Defaults satisfy the appendix's constraints: ε < 1/4, c ≤ 2^-8 and
    δ < ε^{8/3} c² / 16 (with ε = 0.2, c = 2^-8 the right side is
    ≈ 1.3e-8, so δ = 1e-9 qualifies).
    """

    epsilon: float = 0.2
    delta: float = 1e-9
    c: float = 2.0 ** -8
    scan_points: int = 12

    def __post_init__(self) -> None:
        bound = (self.epsilon ** (8.0 / 3.0)) * self.c * self.c / 16.0
        if not self.delta < bound:
            raise ExperimentError(
                f"appendix A needs delta < eps^(8/3) c^2/16 = {bound:g}, "
                f"got {self.delta}"
            )


@dataclass(frozen=True, slots=True)
class AppendixARow:
    """Exact failure probabilities at one count n."""

    n: int
    vanilla_failure: float
    morris_plus_failure: float
    ratio_to_delta: float


@dataclass(frozen=True, slots=True)
class AppendixAResult:
    """Scan of exact failure probabilities across small counts."""

    config: AppendixAConfig
    a: float
    adversarial_n: int
    transition: int
    rows: tuple[AppendixARow, ...]

    @property
    def adversarial_row(self) -> AppendixARow:
        """The row at the appendix's adversarial count N'."""
        for row in self.rows:
            if row.n == self.adversarial_n:
                return row
        raise ExperimentError("adversarial count missing from scan")

    def table(self) -> str:
        """Render the scan."""
        table = TextTable(
            [
                "N",
                "vanilla P[est<(1-eps)N]",
                "Morris+ failure",
                "ratio to delta",
            ]
        )
        for row in self.rows:
            marker = " (=N')" if row.n == self.adversarial_n else ""
            table.add_row(
                f"{row.n}{marker}",
                row.vanilla_failure,
                row.morris_plus_failure,
                f"{row.ratio_to_delta:.3g}x",
            )
        return table.render()


def run_appendix_a(config: AppendixAConfig = AppendixAConfig()) -> AppendixAResult:
    """Compute the exact Appendix A comparison."""
    a = morris_a_optimal(config.epsilon, config.delta)
    adversarial = appendix_a_adversarial_n(a, config.epsilon, config.c)
    transition = morris_transition_point(a)
    # Scan counts from the adversarial point up to just past 8/a on a
    # geometric grid (all small enough for the exact DP).
    points: list[int] = [adversarial]
    value = float(adversarial)
    ratio = (2.0 * transition / adversarial) ** (
        1.0 / max(1, config.scan_points - 1)
    )
    while len(points) < config.scan_points:
        value *= ratio
        point = int(round(value))
        if point > points[-1]:
            points.append(point)
    failures = morris_low_failure_scan(a, config.epsilon, points)
    rows = []
    for n, vanilla in zip(points, failures):
        # Morris+ answers from the exact prefix while n <= 8/a: zero error.
        plus = 0.0 if n <= transition else vanilla
        rows.append(
            AppendixARow(
                n=n,
                vanilla_failure=vanilla,
                morris_plus_failure=plus,
                ratio_to_delta=vanilla / config.delta,
            )
        )
    return AppendixAResult(
        config=config,
        a=a,
        adversarial_n=adversarial,
        transition=transition,
        rows=tuple(rows),
    )
