"""ASCII plotting for terminal-first experiment output.

:func:`ascii_cdf` renders the empirical-CDF comparison of Figure 1: the
x-axis is "% of trial runs" and the y-axis "relative error (%) at or below
which that fraction of runs fell", matching the paper's axes.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ExperimentError

__all__ = ["ascii_cdf", "ascii_series"]

_MARKERS = "ox+*#@"


def _cdf_value(sorted_sample: Sequence[float], fraction: float) -> float:
    """Error level below which ``fraction`` of the sample lies."""
    rank = min(
        len(sorted_sample) - 1,
        max(0, math.ceil(fraction * len(sorted_sample)) - 1),
    )
    return sorted_sample[rank]


def ascii_cdf(
    samples: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 20,
) -> str:
    """Plot empirical CDFs of one or more samples.

    ``samples`` maps series name to raw values (e.g. relative errors).
    Each column of the plot is a percentile 0..100; each series gets a
    marker; overlapping points show the later series' marker over ``o``.
    """
    if not samples:
        raise ExperimentError("no samples to plot")
    if width < 10 or height < 4:
        raise ExperimentError("plot must be at least 10x4")
    prepared = {
        name: sorted(values) for name, values in samples.items() if values
    }
    if not prepared:
        raise ExperimentError("all samples are empty")
    y_max = max(values[-1] for values in prepared.values())
    if y_max <= 0.0:
        y_max = 1.0
    grid = [[" "] * width for _ in range(height)]
    for series_index, (name, values) in enumerate(prepared.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for col in range(width):
            fraction = (col + 1) / width
            level = _cdf_value(values, fraction)
            row = height - 1 - int((level / y_max) * (height - 1))
            row = min(height - 1, max(0, row))
            grid[row][col] = marker
    lines = []
    for row_index, row in enumerate(grid):
        level = y_max * (height - 1 - row_index) / (height - 1)
        lines.append(f"{level:10.4g} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12 + "0%" + " " * (width - 8) + "100%  (fraction of runs)"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}"
        for i, name in enumerate(prepared)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def ascii_series(
    points: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    logx: bool = False,
) -> str:
    """Scatter one or more (x, y) series on a shared grid."""
    if not points:
        raise ExperimentError("no series to plot")
    all_points = [p for series in points.values() for p in series]
    if not all_points:
        raise ExperimentError("all series are empty")

    def tx(x: float) -> float:
        return math.log10(max(x, 1e-300)) if logx else x

    xs = [tx(p[0]) for p in all_points]
    ys = [p[1] for p in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for series_index, (name, series) in enumerate(points.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for x, y in series:
            col = int((tx(x) - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker
    lines = []
    for row_index, row in enumerate(grid):
        level = y_lo + y_span * (height - 1 - row_index) / (height - 1)
        lines.append(f"{level:10.4g} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    x_label = "log10(x)" if logx else "x"
    lines.append(
        f"{'':11}{x_lo:<12.4g}{x_label:^{max(1, width - 24)}}{x_hi:>12.4g}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}"
        for i, name in enumerate(points)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
