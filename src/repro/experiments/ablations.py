"""Ablations of the paper's design choices.

Three knobs the algorithms fix by analysis, each varied here to show the
analysis is load-bearing:

* **A1 — Chernoff constant C** (Algorithm 1, Theorem 2.1 needs C ≥ 3):
  smaller C shrinks every epoch's sample size ``αT ≈ C·ln(X²/δ)/ε²·(1/ε)``
  and should eventually surface epoch-transition failures; larger C only
  costs Y bits.
* **A2 — dyadic rounding of α** (Remark 2.2): rounding α *up* to ``2^-t``
  is required for the coin protocol; the ablation compares against the
  hypothetical exact-α implementation to show rounding costs at most one
  Y bit and does not hurt accuracy (the Chernoff argument needs α at
  least the computed rate, and rounding up preserves that).
* **A3 — Morris+ transition point** (Appendix A): the deterministic
  prefix must run to ``Θ(1/a)``; transitions at ``c·ε^{4/3}/a`` (the
  appendix's adversarial scale) leak failure probability orders of
  magnitude above δ.  Computed exactly from the DP — the ablation is the
  executable form of Appendix A's "the choice 8/a is almost optimal".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.params import (
    morris_a_optimal,
    nelson_yu_alpha_raw,
    nelson_yu_x0,
    validate_epsilon_delta,
)
from repro.errors import ExperimentError
from repro.experiments import fastsim
from repro.experiments.config import ExperimentContext
from repro.experiments.records import TextTable
from repro.rng.bernoulli import DyadicProbability
from repro.theory.failure import morris_low_failure_scan

__all__ = [
    "ChernoffAblationConfig",
    "ChernoffAblationResult",
    "run_chernoff_ablation",
    "RoundingAblationResult",
    "run_rounding_ablation",
    "TransitionAblationConfig",
    "TransitionAblationResult",
    "run_transition_ablation",
]


# ----------------------------------------------------------------------
# shared: a Nelson-Yu simulator with ablatable α handling
# ----------------------------------------------------------------------
def _nelson_yu_trial(
    epsilon: float,
    delta: float,
    chernoff_c: float,
    n: int,
    rng: np.random.Generator,
    dyadic: bool,
) -> tuple[int, int, float]:
    """One NY run; returns (x, y_bits_needed, alpha).

    With ``dyadic=False`` the sampling rate stays the raw real value —
    the hypothetical implementation Remark 2.2 replaces.
    """
    log1pe = math.log1p(epsilon)
    x = nelson_yu_x0(epsilon, delta, chernoff_c)
    threshold = math.ceil(math.exp(x * log1pe))
    y = 0
    alpha = 1.0
    y_max = 0
    remaining = n
    while remaining > 0:
        trigger = math.floor(alpha * threshold) + 1
        need = trigger - y
        if alpha >= 1.0:
            take = min(remaining, need)
            y += take
            remaining -= take
        else:
            gaps = rng.geometric(alpha, size=need)
            cumulative = np.cumsum(gaps)
            if cumulative[-1] <= remaining:
                remaining -= int(cumulative[-1])
                y = trigger
            else:
                y += int(np.searchsorted(cumulative, remaining, side="right"))
                remaining = 0
        y_max = max(y_max, y)
        while y > math.floor(alpha * threshold):
            x += 1
            threshold = math.ceil(math.exp(x * log1pe))
            alpha_raw = nelson_yu_alpha_raw(
                epsilon, delta, chernoff_c, x, threshold
            )
            if dyadic:
                alpha_new = min(
                    alpha, DyadicProbability.at_least(alpha_raw).value
                )
            else:
                alpha_new = min(alpha, alpha_raw)
            y = math.floor(y * alpha_new / alpha)
            alpha = alpha_new
    return x, max(1, y_max.bit_length()), alpha


def _nelson_yu_estimate(epsilon: float, x: int, x0: int, y: int) -> float:
    if x == x0:
        return float(y)
    return float(math.ceil(math.exp(x * math.log1p(epsilon))))


# ----------------------------------------------------------------------
# A1: Chernoff constant
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ChernoffAblationConfig:
    """A1 parameters."""

    epsilon: float = 0.2
    delta_exponent: int = 7
    n: int = 100_000
    trials: int = 600
    c_values: tuple[float, ...] = (0.25, 0.75, 1.5, 3.0, 6.0, 12.0)


@dataclass(frozen=True, slots=True)
class ChernoffAblationResult:
    """A1 table: epoch dispersion, failure rate, and Y width vs C.

    At a fixed count the output of Algorithm 1 is quantized to the
    ``(1+ε)^X`` grid, so the estimate is *deterministic* unless an epoch
    transition slips — the C-sensitive observable is therefore the
    *epoch dispersion*: the fraction of trials whose final X differs from
    the modal X.  Small C fuzzes the transitions (the Chernoff sample per
    epoch shrinks); large C only pays Y bits.
    """

    config: ChernoffAblationConfig
    rows: tuple[tuple[float, float, float, float], ...]
    # (C, epoch_dispersion, fail_rate at 1.5ε, mean y_bits)

    def table(self) -> str:
        """Render the ablation."""
        table = TextTable(
            [
                "C",
                "epoch dispersion P[X != mode]",
                "failure rate (err > 1.5*eps)",
                "mean Y bits",
            ]
        )
        for c, dispersion, failure, y_bits in self.rows:
            table.add_row(
                c, f"{dispersion:.4f}", f"{failure:.4f}", f"{y_bits:.1f}"
            )
        return table.render()

    @property
    def default_row(self) -> tuple[float, float, float, float]:
        """The row at the library default C = 6."""
        for row in self.rows:
            if row[0] == 6.0:
                return row
        raise ExperimentError("default C missing from sweep")


def run_chernoff_ablation(
    config: ChernoffAblationConfig = ChernoffAblationConfig(),
    context: ExperimentContext = ExperimentContext(),
) -> ChernoffAblationResult:
    """Sweep the Chernoff constant C of Algorithm 1."""
    delta = 2.0 ** -config.delta_exponent
    validate_epsilon_delta(config.epsilon, delta)
    rows = []
    for c in config.c_values:
        rng = fastsim.make_generator(context.seed, 0xA1, int(c * 100))
        x0 = nelson_yu_x0(config.epsilon, delta, c)
        failures = 0
        y_bits_total = 0
        final_x: list[int] = []
        for _ in range(config.trials):
            x, y_bits, _ = _nelson_yu_trial(
                config.epsilon, delta, c, config.n, rng, dyadic=True
            )
            final_x.append(x)
            estimate = _nelson_yu_estimate(config.epsilon, x, x0, 0)
            if abs(estimate - config.n) > 1.5 * config.epsilon * config.n:
                failures += 1
            y_bits_total += y_bits
        mode = max(set(final_x), key=final_x.count)
        dispersion = sum(1 for x in final_x if x != mode) / len(final_x)
        rows.append(
            (
                c,
                dispersion,
                failures / config.trials,
                y_bits_total / config.trials,
            )
        )
    return ChernoffAblationResult(config=config, rows=tuple(rows))


# ----------------------------------------------------------------------
# A2: dyadic rounding of α
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RoundingAblationResult:
    """A2 table: dyadic vs exact α."""

    epsilon: float
    delta_exponent: int
    n: int
    trials: int
    rows: tuple[tuple[str, float, float], ...]  # (mode, rms, y_bits)

    def table(self) -> str:
        """Render the comparison."""
        table = TextTable(["alpha handling", "rms rel. error", "mean Y bits"])
        for mode, rms, y_bits in self.rows:
            table.add_row(mode, f"{rms:.4f}", f"{y_bits:.1f}")
        return table.render()


def run_rounding_ablation(
    epsilon: float = 0.2,
    delta_exponent: int = 7,
    n: int = 100_000,
    trials: int = 600,
    context: ExperimentContext = ExperimentContext(),
) -> RoundingAblationResult:
    """Compare Remark 2.2's round-up-α against hypothetical exact α."""
    delta = 2.0 ** -delta_exponent
    validate_epsilon_delta(epsilon, delta)
    x0 = nelson_yu_x0(epsilon, delta, 6.0)
    rows = []
    for label, dyadic in (("dyadic 2^-t (Remark 2.2)", True), ("exact float alpha", False)):
        rng = fastsim.make_generator(context.seed, 0xA2, int(dyadic))
        square_error = 0.0
        y_bits_total = 0
        for _ in range(trials):
            x, y_bits, _ = _nelson_yu_trial(
                epsilon, delta, 6.0, n, rng, dyadic=dyadic
            )
            estimate = _nelson_yu_estimate(epsilon, x, x0, 0)
            square_error += ((estimate - n) / n) ** 2
            y_bits_total += y_bits
        rows.append(
            (label, math.sqrt(square_error / trials), y_bits_total / trials)
        )
    return RoundingAblationResult(
        epsilon=epsilon,
        delta_exponent=delta_exponent,
        n=n,
        trials=trials,
        rows=tuple(rows),
    )


# ----------------------------------------------------------------------
# A3: Morris+ transition point
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class TransitionAblationConfig:
    """A3 parameters (Appendix A's regime)."""

    epsilon: float = 0.2
    delta: float = 1e-9
    c: float = 2.0 ** -8


@dataclass(frozen=True, slots=True)
class TransitionAblationResult:
    """A3 table: worst failure past each candidate transition point."""

    config: TransitionAblationConfig
    a: float
    rows: tuple[tuple[str, int, float, float], ...]
    # (label, transition, worst failure beyond it, ratio to delta)

    def table(self) -> str:
        """Render the ablation."""
        table = TextTable(
            [
                "transition rule",
                "value",
                "worst P[fail] past transition",
                "ratio to delta",
            ]
        )
        for label, value, failure, ratio in self.rows:
            table.add_row(label, value, failure, f"{ratio:.3g}x")
        return table.render()


def run_transition_ablation(
    config: TransitionAblationConfig = TransitionAblationConfig(),
) -> TransitionAblationResult:
    """Exactly evaluate candidate deterministic-prefix lengths.

    For each rule r, Morris+ with transition r answers exactly below r and
    from Morris(a) above; its worst failure probability is therefore
    ``max over N > r`` of the exact one-sided Morris failure.  The scan
    covers N up to past 8/a, where the failure is provably negligible.
    """
    a = morris_a_optimal(config.epsilon, config.delta)
    full = math.ceil(8.0 / a)
    candidates = [
        ("c*eps^(4/3)/a (Appendix A scale)",
         max(1, math.ceil(config.c * config.epsilon ** (4 / 3) / a))),
        ("1/a", max(1, math.ceil(1.0 / a))),
        ("8/a (paper's choice)", full),
        ("16/a", 2 * full),
    ]
    # One exact DP pass over a geometric grid up to 4*full.
    grid: list[int] = []
    value = 2.0
    while value < 4 * full:
        point = int(round(value))
        if not grid or point > grid[-1]:
            grid.append(point)
        value *= 1.35
    failures = morris_low_failure_scan(a, config.epsilon, grid)
    by_n = dict(zip(grid, failures))
    rows = []
    for label, transition in candidates:
        beyond = [by_n[n] for n in grid if n > transition]
        worst = max(beyond) if beyond else 0.0
        rows.append((label, transition, worst, worst / config.delta))
    return TransitionAblationResult(config=config, a=a, rows=tuple(rows))
