"""E1 — Figure 1: empirical relative-error CDFs at 17 bits of memory.

Paper protocol (§4): for each algorithm, 5,000 times: pick a uniformly
random integer ``N ∈ [500000, 999999]`` (a 20-bit number), perform N
increments with the algorithm parameterized to use only 17 bits of memory,
and record the relative error of the final estimate.  Plot the empirical
CDFs.  Published observations: the two CDFs are nearly identical, and
neither algorithm ever erred by more than 2.37%.

Our parameterization rule (the paper's script is not public): choose each
algorithm's accuracy knob as aggressively as possible subject to its state
*register* fitting in 17 bits over the whole run —
:func:`repro.core.params.morris_a_for_bits` and
:func:`repro.core.params.simplified_ny_for_bits`.  Both algorithms see the
same sequence of N draws.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimators import morris_estimate, subsample_estimate
from repro.core.params import morris_a_for_bits, simplified_ny_for_bits
from repro.errors import ExperimentError
from repro.experiments import fastsim
from repro.experiments.config import ExperimentContext
from repro.experiments.plotting import ascii_cdf
from repro.experiments.records import Summary, TextTable, summarize

__all__ = ["Figure1Config", "Figure1Result", "run_figure1"]


@dataclass(frozen=True, slots=True)
class Figure1Config:
    """Knobs of the Figure 1 protocol (defaults = the paper's)."""

    trials: int = 5000
    n_low: int = 500_000
    n_high: int = 999_999
    bits: int = 17
    morris_headroom: float = 4.0
    simplified_headroom: float = 2.0


@dataclass(frozen=True, slots=True)
class Figure1Result:
    """Relative errors per algorithm plus the fitted parameters."""

    config: Figure1Config
    morris_a: float
    simplified_resolution: int
    simplified_t_max: int
    morris_errors: tuple[float, ...]
    simplified_errors: tuple[float, ...]

    @property
    def morris_summary(self) -> Summary:
        """Error summary for the Morris Counter."""
        return summarize(self.morris_errors)

    @property
    def simplified_summary(self) -> Summary:
        """Error summary for the simplified Algorithm 1."""
        return summarize(self.simplified_errors)

    def ks_distance(self) -> float:
        """Kolmogorov-Smirnov distance between the two error CDFs.

        The paper's headline observation is that the CDFs nearly coincide;
        this is the quantitative version.
        """
        a = sorted(self.morris_errors)
        b = sorted(self.simplified_errors)
        points = sorted(set(a) | set(b))
        worst = 0.0
        ai = bi = 0
        for x in points:
            while ai < len(a) and a[ai] <= x:
                ai += 1
            while bi < len(b) and b[bi] <= x:
                bi += 1
            worst = max(worst, abs(ai / len(a) - bi / len(b)))
        return worst

    def table(self) -> str:
        """The numeric CDF table (percentiles in %, like the figure axes)."""
        table = TextTable(
            ["% of runs", "Morris rel.err (%)", "SimplifiedNY rel.err (%)"]
        )
        morris = sorted(self.morris_errors)
        simplified = sorted(self.simplified_errors)
        for pct in (10, 25, 50, 75, 90, 95, 99, 100):
            index_m = max(0, (pct * len(morris)) // 100 - 1)
            index_s = max(0, (pct * len(simplified)) // 100 - 1)
            table.add_row(
                pct, 100.0 * morris[index_m], 100.0 * simplified[index_s]
            )
        return table.render()

    def plot(self, width: int = 72, height: int = 20) -> str:
        """ASCII rendering of the paper's Figure 1."""
        return ascii_cdf(
            {
                "Morris": [100.0 * e for e in self.morris_errors],
                "SimplifiedNY": [100.0 * e for e in self.simplified_errors],
            },
            width=width,
            height=height,
        )


def run_figure1(
    config: Figure1Config = Figure1Config(),
    context: ExperimentContext = ExperimentContext(),
) -> Figure1Result:
    """Run the Figure 1 protocol (fast path, distribution-exact)."""
    if config.trials < 1:
        raise ExperimentError("need at least 1 trial")
    morris_a = morris_a_for_bits(
        config.bits, config.n_high, config.morris_headroom
    )
    simplified = simplified_ny_for_bits(
        config.bits, config.n_high, config.simplified_headroom
    )
    n_rng = fastsim.make_generator(context.seed, 0xF16)
    morris_rng = fastsim.make_generator(context.seed, 0xF16, 1)
    simplified_rng = fastsim.make_generator(context.seed, 0xF16, 2)
    morris_errors: list[float] = []
    simplified_errors: list[float] = []
    for _ in range(config.trials):
        n = int(n_rng.integers(config.n_low, config.n_high + 1))
        x = fastsim.morris_final_x(morris_a, n, morris_rng)
        morris_errors.append(abs(morris_estimate(x, morris_a) - n) / n)
        y, t = fastsim.simplified_final_state(
            simplified.resolution, simplified.t_max, n, simplified_rng
        )
        simplified_errors.append(abs(subsample_estimate(y, t) - n) / n)
    return Figure1Result(
        config=config,
        morris_a=morris_a,
        simplified_resolution=simplified.resolution,
        simplified_t_max=simplified.t_max,
        morris_errors=tuple(morris_errors),
        simplified_errors=tuple(simplified_errors),
    )
