"""E5 — the Morris(a=1) constant failure floor (§1.1 / [Fla85] Prop. 3).

§1.1's argument for why Morris' original a = 1 parameterization cannot
achieve high success probability: [Fla85] Prop. 3 implies
``P[X ∉ [log2 N − C, log2 N + C]]`` equals a constant depending on C but
*not* on N — and X landing in that window is necessary for a
``2^C``-approximation.  So the failure probability is not even o(1).

This experiment computes the exact window-miss probability from the
Flajolet DP over a geometric grid of N for several C, demonstrating the
flat-in-N floor, and contrasts it with ``a = Θ(1/log N)`` (the paper's
observation that a mildly smaller base already drives the failure
probability down "for free" in space terms).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.experiments.records import TextTable
from repro.theory.failure import morris_a1_window_failure
from repro.theory.flajolet import morris_failure_probability

__all__ = ["FloorConfig", "FloorRow", "FloorResult", "run_flajolet_floor"]


@dataclass(frozen=True, slots=True)
class FloorConfig:
    """Grid of the floor experiment."""

    n_values: tuple[int, ...] = (1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16)
    window_cs: tuple[float, ...] = (1.0, 2.0, 3.0)
    #: ε used for the small-a comparison column (2^C-approx vs (1+ε)).
    comparison_epsilon: float = 0.5


@dataclass(frozen=True, slots=True)
class FloorRow:
    """Exact probabilities at one N."""

    n: int
    window_failures: tuple[float, ...]
    small_a: float
    small_a_failure: float


@dataclass(frozen=True, slots=True)
class FloorResult:
    """The floor table: flat columns for a=1, vanishing for a=Θ(1/log N)."""

    config: FloorConfig
    rows: tuple[FloorRow, ...]

    def table(self) -> str:
        """Render the grid."""
        headers = ["N"]
        headers += [f"a=1 miss(C={c:g})" for c in self.config.window_cs]
        headers += ["a=1/(4 log2 N)", "failure(eps=0.5)"]
        table = TextTable(headers)
        for row in self.rows:
            cells: list[object] = [row.n]
            cells += [float(v) for v in row.window_failures]
            cells += [row.small_a, row.small_a_failure]
            table.add_row(*cells)
        return table.render()

    def floor_spread(self, c_index: int = 0) -> float:
        """Max-minus-min of the a=1 column across N (flatness metric)."""
        if not self.rows:
            raise ExperimentError("no rows")
        column = [row.window_failures[c_index] for row in self.rows]
        return max(column) - min(column)


def run_flajolet_floor(config: FloorConfig = FloorConfig()) -> FloorResult:
    """Compute the exact failure-floor grid."""
    rows = []
    for n in config.n_values:
        window = tuple(
            morris_a1_window_failure(n, c) for c in config.window_cs
        )
        small_a = 1.0 / (4.0 * math.log2(n))
        small_failure = morris_failure_probability(
            small_a, n, config.comparison_epsilon
        )
        rows.append(
            FloorRow(
                n=n,
                window_failures=window,
                small_a=small_a,
                small_a_failure=small_failure,
            )
        )
    return FloorResult(config=config, rows=tuple(rows))
