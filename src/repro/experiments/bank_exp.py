"""E10 — the many-counter argument of §1, measured.

"If we are maintaining M counters then it is natural to want δ ≪ 1/M so
that each counter is approximately correct with high probability.  If M is
very large, then requiring log(1/δ) ≥ log M bits per counter may provide
no benefit over a naive log N bit counter."

The experiment maintains a bank of M counters, all seeing the same count,
and sweeps δ:

* the fraction of counters outside ``(1 ± ε)`` (the *target* radius —
  tighter than the 2ε the §2.2 proof guarantees, so failures are actually
  observable) should fall with δ and hit ≈ 0 once δ ≪ 1/M;
* per-counter memory grows like ``log(1/δ)`` for the Chebyshev-tuned
  Morris bank (eventually matching the exact counter — the paper's "no
  benefit" point) but only ``log log(1/δ)`` for the optimal tuning.

Using one shared count for all keys isolates the δ effect (every counter
faces the same task, failures are independent across counters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimators import morris_estimate
from repro.core.params import (
    morris_a_chebyshev,
    morris_a_optimal,
    morris_transition_point,
)
from repro.errors import ExperimentError
from repro.experiments import fastsim
from repro.experiments.config import ExperimentContext
from repro.experiments.records import TextTable
from repro.theory.space import morris_space_bits

__all__ = ["BankConfig", "BankRow", "BankResult", "run_bank_experiment"]


@dataclass(frozen=True, slots=True)
class BankConfig:
    """Bank sweep parameters."""

    n_counters: int = 2000
    count: int = 100_000
    epsilon: float = 0.2
    delta_exponents: tuple[int, ...] = (2, 4, 8, 14, 22)


@dataclass(frozen=True, slots=True)
class BankRow:
    """Outcome of one δ setting."""

    delta_exponent: int
    delta_times_m: float
    optimal_bad_fraction: float
    chebyshev_bad_fraction: float
    optimal_bits_per_counter: int
    chebyshev_bits_per_counter: int


@dataclass(frozen=True, slots=True)
class BankResult:
    """The bank sweep table."""

    config: BankConfig
    exact_bits: int
    rows: tuple[BankRow, ...]

    def table(self) -> str:
        """Render the sweep."""
        table = TextTable(
            [
                "log2(1/delta)",
                "delta*M",
                "bad keys (optimal)",
                "bad keys (chebyshev)",
                "bits/ctr (optimal)",
                "bits/ctr (chebyshev)",
            ]
        )
        for row in self.rows:
            table.add_row(
                row.delta_exponent,
                f"{row.delta_times_m:.3g}",
                f"{row.optimal_bad_fraction:.4f}",
                f"{row.chebyshev_bad_fraction:.4f}",
                row.optimal_bits_per_counter,
                row.chebyshev_bits_per_counter,
            )
        return table.render()


def run_bank_experiment(
    config: BankConfig = BankConfig(),
    context: ExperimentContext = ExperimentContext(),
) -> BankResult:
    """Sweep δ for a bank of M identical-count counters."""
    if config.n_counters < 10:
        raise ExperimentError("need at least 10 counters")
    m = config.n_counters
    n = config.count
    eps = config.epsilon
    rows = []
    for exponent in config.delta_exponents:
        delta = 2.0 ** -exponent
        a_opt = morris_a_optimal(eps, delta)
        a_cheb = morris_a_chebyshev(eps, delta)
        rng_opt = fastsim.make_generator(context.seed, 0xE10, exponent, 1)
        rng_cheb = fastsim.make_generator(context.seed, 0xE10, exponent, 2)
        bad_opt = bad_cheb = 0
        for _ in range(m):
            x = fastsim.morris_final_x(a_opt, n, rng_opt)
            if abs(morris_estimate(x, a_opt) - n) > eps * n:
                bad_opt += 1
            x = fastsim.morris_final_x(a_cheb, n, rng_cheb)
            if abs(morris_estimate(x, a_cheb) - n) > eps * n:
                bad_cheb += 1
        prefix_bits = max(
            1, (morris_transition_point(a_opt) + 1).bit_length()
        )
        rows.append(
            BankRow(
                delta_exponent=exponent,
                delta_times_m=delta * m,
                optimal_bad_fraction=bad_opt / m,
                chebyshev_bad_fraction=bad_cheb / m,
                optimal_bits_per_counter=prefix_bits
                + morris_space_bits(a_opt, n),
                chebyshev_bits_per_counter=morris_space_bits(a_cheb, n),
            )
        )
    return BankResult(
        config=config,
        exact_bits=max(1, n.bit_length()),
        rows=tuple(rows),
    )
