"""A random source that meters every random bit it hands out.

:class:`BitBudgetedRandom` is the only random source used by counters and
experiments.  Beyond determinism (explicit seeds everywhere), it accounts
for the number of random bits consumed, which mirrors the paper's concern
for resource-bounded computation: Remark 2.2 describes how ``Bernoulli(α)``
with ``α = 2^-t`` is realized with ``t`` fair coin flips and ``O(log t)``
transient bits.

Accounting conventions
----------------------
* ``coin()`` and ``getbits(k)`` consume exactly 1 and ``k`` bits.
* ``bernoulli_pow2(t)`` uses the early-exit coin protocol: it stops at the
  first tails, so it consumes ``min(geometric, t)`` bits (2 in expectation).
* ``uniform53()`` and the floating-point samplers consume 53 bits.

Words from the underlying 64-bit generator are buffered so no entropy is
discarded between calls.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError
from repro.rng.splitmix import Xoshiro256StarStar, derive_seed

__all__ = ["BitBudgetedRandom"]


class BitBudgetedRandom:
    """Deterministic, bit-metered source of randomness.

    Parameters
    ----------
    seed:
        Integer seed.  Two instances with the same seed produce identical
        streams.
    """

    __slots__ = ("_gen", "_seed", "_buffer", "_buffer_len", "bits_consumed")

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._gen = Xoshiro256StarStar(seed)
        self._buffer = 0
        self._buffer_len = 0
        #: Total number of random bits handed out so far.
        self.bits_consumed = 0

    # ------------------------------------------------------------------
    # stream management
    # ------------------------------------------------------------------
    @property
    def seed(self) -> int:
        """The seed this source was created with."""
        return self._seed

    def split(self, *keys: int) -> "BitBudgetedRandom":
        """Return an independent child source derived from ``keys``.

        The child's stream depends only on this source's seed and the key
        tuple, not on how much of this stream has been consumed, so
        experiment code can split reproducibly regardless of call order.
        """
        return BitBudgetedRandom(derive_seed(self._seed, *keys))

    # ------------------------------------------------------------------
    # raw bits
    # ------------------------------------------------------------------
    def getbits(self, k: int) -> int:
        """Return ``k`` random bits as an integer in ``[0, 2**k)``."""
        if k < 0:
            raise ParameterError(f"bit count must be non-negative, got {k}")
        if k == 0:
            return 0
        while self._buffer_len < k:
            self._buffer |= self._gen.next64() << self._buffer_len
            self._buffer_len += 64
        value = self._buffer & ((1 << k) - 1)
        self._buffer >>= k
        self._buffer_len -= k
        self.bits_consumed += k
        return value

    def coin(self) -> bool:
        """Flip one fair coin (consumes exactly one bit)."""
        return bool(self.getbits(1))

    # ------------------------------------------------------------------
    # distributions
    # ------------------------------------------------------------------
    def uniform53(self) -> float:
        """Return a uniform float in ``[0, 1)`` with 53 random bits."""
        return self.getbits(53) * (2.0 ** -53)

    def uniform_open(self) -> float:
        """Return a uniform float in the *open* interval ``(0, 1)``.

        Useful for inverse-CDF sampling where ``log(0)`` must be avoided:
        the all-zeros draw maps to ``2**-54``.
        """
        u = self.uniform53()
        if u == 0.0:
            return 2.0 ** -54
        return u

    def bernoulli_pow2(self, t: int) -> bool:
        """Sample ``Bernoulli(2**-t)`` with the coin-AND protocol.

        Flips at most ``t`` fair coins and returns ``True`` iff all came up
        heads — exactly the procedure of Remark 2.2.  Early exit on the
        first tails keeps the expected bit cost below 2 regardless of ``t``.
        """
        if t < 0:
            raise ParameterError(f"t must be non-negative, got {t}")
        for _ in range(t):
            if not self.coin():
                return False
        return True

    def bernoulli(self, p: float) -> bool:
        """Sample ``Bernoulli(p)`` for arbitrary ``p`` in ``[0, 1]``.

        Uses a single 53-bit uniform.  Exact dyadic probabilities should
        prefer :meth:`bernoulli_pow2`, which is cheaper and bit-exact.
        """
        if not 0.0 <= p <= 1.0:
            raise ParameterError(f"probability must be in [0, 1], got {p}")
        if p == 0.0:
            return False
        if p == 1.0:
            return True
        return self.uniform53() < p

    def geometric(self, p: float) -> int:
        """Sample a geometric variable on ``{1, 2, ...}`` with success ``p``.

        ``P[G = l] = (1 - p)^(l-1) * p`` — the waiting time until the first
        success of a ``Bernoulli(p)`` sequence, matching the paper's
        ``Z_i`` variables in §2.2.  Sampling is by inverse CDF on a 53-bit
        open uniform: ``G = floor(log(U) / log(1 - p)) + 1``.
        """
        if not 0.0 < p <= 1.0:
            raise ParameterError(f"probability must be in (0, 1], got {p}")
        if p == 1.0:
            return 1
        u = self.uniform_open()
        # log1p(-p) is the numerically-stable log(1 - p); always < 0 here.
        g = int(math.log(u) / math.log1p(-p)) + 1
        return max(g, 1)

    def geometric_pow2(self, t: int) -> int:
        """Geometric waiting time for success probability ``2**-t``.

        Dyadic-exact counterpart of :meth:`geometric`: repeatedly runs the
        coin-AND protocol of :meth:`bernoulli_pow2` — but implemented by
        inverse CDF for speed when ``t`` is large, falling back to the
        bit-exact protocol for small ``t`` (where it is cheap *and* exact).
        """
        if t < 0:
            raise ParameterError(f"t must be non-negative, got {t}")
        if t == 0:
            return 1
        if t <= 4:
            count = 1
            while not self.bernoulli_pow2(t):
                count += 1
            return count
        return self.geometric(2.0 ** -t)

    def randint_below(self, n: int) -> int:
        """Return a uniform integer in ``[0, n)`` by rejection sampling."""
        if n <= 0:
            raise ParameterError(f"n must be positive, got {n}")
        k = max(1, (n - 1).bit_length())
        while True:
            value = self.getbits(k)
            if value < n:
                return value

    def randint(self, lo: int, hi: int) -> int:
        """Return a uniform integer in the inclusive range ``[lo, hi]``."""
        if hi < lo:
            raise ParameterError(f"empty range [{lo}, {hi}]")
        return lo + self.randint_below(hi - lo + 1)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place (Fisher-Yates)."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint_below(i + 1)
            items[i], items[j] = items[j], items[i]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BitBudgetedRandom(seed={self._seed!r}, "
            f"bits_consumed={self.bits_consumed})"
        )
