"""Geometric-distribution helpers.

The paper's §2.2 analysis rests on the waiting times ``Z_i`` between Morris
state transitions being geometric; the same fact powers the skip-ahead
driver in :mod:`repro.rng.skip`.  This module provides truncated and
binomial-complement sampling built on top of the basic generator.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom

__all__ = [
    "geometric_mean",
    "geometric_variance",
    "sample_truncated_geometric",
    "sample_binomial",
]


def geometric_mean(p: float) -> float:
    """Mean ``1/p`` of a geometric variable on ``{1, 2, ...}``."""
    if not 0.0 < p <= 1.0:
        raise ParameterError(f"probability must be in (0, 1], got {p}")
    return 1.0 / p


def geometric_variance(p: float) -> float:
    """Variance ``(1-p)/p**2`` of a geometric variable on ``{1, 2, ...}``."""
    if not 0.0 < p <= 1.0:
        raise ParameterError(f"probability must be in (0, 1], got {p}")
    return (1.0 - p) / (p * p)


def sample_truncated_geometric(
    rng: BitBudgetedRandom, p: float, limit: int
) -> int | None:
    """Sample a geometric waiting time, reporting overflow past ``limit``.

    Returns the waiting time ``G`` if ``G <= limit``; otherwise ``None``,
    meaning no success occurred within ``limit`` trials.  The two outcomes
    have exactly the right probabilities because the plain geometric sample
    is exact and we only compare it to the cutoff.
    """
    if limit <= 0:
        raise ParameterError(f"limit must be positive, got {limit}")
    g = rng.geometric(p)
    if g <= limit:
        return g
    return None


def sample_binomial(rng: BitBudgetedRandom, n: int, p: float) -> int:
    """Sample ``Binomial(n, p)`` exactly.

    Used by the merge procedure (Remark 2.4) to re-subsample survivor
    counts, and by the skip-ahead driver for "count successes among n
    trials" steps.  Strategy: for small ``n`` run ``n`` Bernoulli trials;
    for large ``n`` count successive geometric gaps, which costs
    ``O(np + 1)`` samples instead of ``n``.
    """
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"probability must be in [0, 1], got {p}")
    if n == 0 or p == 0.0:
        return 0
    if p == 1.0:
        return n
    if n <= 16:
        return sum(1 for _ in range(n) if rng.bernoulli(p))
    # Gap method: successes happen at positions separated by geometric gaps.
    successes = 0
    position = 0
    while True:
        position += rng.geometric(p)
        if position > n:
            return successes
        successes += 1


def expected_trials_until_overflow(p: float, limit: int) -> float:
    """Probability that a geometric waiting time exceeds ``limit``.

    Convenience for experiment assertions: ``P[G > limit] = (1-p)**limit``
    computed stably in log space.
    """
    if not 0.0 < p <= 1.0:
        raise ParameterError(f"probability must be in (0, 1], got {p}")
    if p == 1.0:
        return 0.0
    return math.exp(limit * math.log1p(-p))
