"""Standalone Bernoulli sampling helpers.

These free functions mirror the methods on
:class:`~repro.rng.bitstream.BitBudgetedRandom` for callers that hold a
source and a probability description rather than a float.  The key type
here is :class:`DyadicProbability`, the probability representation
prescribed by Remark 2.2: the algorithm never stores a real number α, only
the integer ``t`` with ``α = 2**-t``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom

__all__ = ["DyadicProbability", "sample_bernoulli"]


@dataclass(frozen=True, slots=True)
class DyadicProbability:
    """The probability ``2**-t``, stored as the integer exponent ``t``.

    This is how Algorithm 1 stores its sampling rate α (Remark 2.2):
    rounding a real rate *up* to the nearest inverse power of two keeps the
    Chernoff argument valid (correctness only needs α at least the computed
    value) while making the stored state a ``log log(1/α)``-bit integer.
    """

    t: int

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ParameterError(f"exponent must be non-negative, got {self.t}")

    @classmethod
    def at_least(cls, p: float) -> "DyadicProbability":
        """Smallest dyadic probability ``2**-t`` that is ``>= p``.

        ``p`` must lie in ``(0, 1]``.  This implements the "round α up"
        step of Remark 2.2.
        """
        if not 0.0 < p <= 1.0:
            raise ParameterError(f"probability must be in (0, 1], got {p}")
        # Largest t with 2**-t >= p, i.e. t = floor(log2(1/p)).
        t = int(math.floor(-math.log2(p)))
        t = max(t, 0)
        # Guard against floating-point edge cases on exact powers of two.
        while 2.0 ** -t < p:
            t -= 1
        while t + 1 >= 0 and 2.0 ** -(t + 1) >= p:
            t += 1
        return cls(t)

    @property
    def value(self) -> float:
        """The probability as a float."""
        return 2.0 ** -self.t

    def storage_bits(self) -> int:
        """Bits needed to store the exponent ``t`` itself."""
        return max(1, self.t.bit_length())

    def sample(self, rng: BitBudgetedRandom) -> bool:
        """Draw one Bernoulli variate with the coin-AND protocol."""
        return rng.bernoulli_pow2(self.t)

    def __float__(self) -> float:
        return self.value


def sample_bernoulli(rng: BitBudgetedRandom, p) -> bool:
    """Sample a Bernoulli variate from ``p``.

    ``p`` may be a float in ``[0, 1]`` or a :class:`DyadicProbability`;
    dyadic probabilities use the bit-exact coin protocol.
    """
    if isinstance(p, DyadicProbability):
        return p.sample(rng)
    return rng.bernoulli(float(p))
