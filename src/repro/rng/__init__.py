"""Bit-budgeted randomness substrate.

The counters in :mod:`repro.core` are *space-bounded streaming algorithms*:
the paper's Remark 2.2 is explicit that a ``Bernoulli(2^-t)`` draw should be
realised by flipping ``t`` fair coins and AND-ing them, because that is what
a machine with ``O(log t)`` bits of transient state can afford.  This
package provides:

* :class:`~repro.rng.splitmix.SplitMix64` and
  :class:`~repro.rng.splitmix.Xoshiro256StarStar` — small, fast,
  deterministic pseudo-random generators implemented from scratch (no
  dependency on :mod:`random` internals), with splittable seeding so every
  counter in a large bank gets an independent stream.
* :class:`~repro.rng.bitstream.BitBudgetedRandom` — the random source used
  by every counter.  It meters *every random bit consumed*, which lets the
  experiments report randomness budgets alongside space budgets.
* :mod:`~repro.rng.bernoulli` / :mod:`~repro.rng.geometric` — exact
  Bernoulli and geometric sampling primitives.
* :mod:`~repro.rng.skip` — a distribution-exact fast-forward engine: while a
  counter's accept probability is constant, the gap to the next accepted
  increment is geometric, so ``add(n)`` can jump over millions of rejected
  increments without simulating them one by one.
"""

from repro.rng.bitstream import BitBudgetedRandom
from repro.rng.splitmix import SplitMix64, Xoshiro256StarStar, derive_seed
from repro.rng.skip import GeometricSkipper

__all__ = [
    "BitBudgetedRandom",
    "SplitMix64",
    "Xoshiro256StarStar",
    "GeometricSkipper",
    "derive_seed",
]
