"""Distribution-exact fast-forward over rejected increments.

Running the Figure 1 experiment naively means simulating ~7.5e5 Bernoulli
trials per run for 10,000 runs — most of them rejections that do not change
the counter's state.  While an approximate counter's state is unchanged its
accept probability ``p`` is constant, so the index of the next *accepted*
increment is the current index plus a Geometric(``p``) gap.

:class:`GeometricSkipper` packages this: the counter tells it the current
accept probability and how many increments remain, and it answers either
"the next accept happens after ``g`` increments" or "no accept happens in
the remaining budget" — with exactly the probabilities the one-at-a-time
simulation would produce.  Counters use this inside ``add(n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom

__all__ = ["SkipOutcome", "GeometricSkipper"]


@dataclass(frozen=True, slots=True)
class SkipOutcome:
    """Result of one skip-ahead step.

    Attributes
    ----------
    accepted:
        True if an accepted increment occurred within the budget.
    consumed:
        How many increments of the budget were consumed.  When
        ``accepted`` is True the accepted increment is the *last* of the
        consumed ones; otherwise ``consumed`` equals the whole budget.
    """

    accepted: bool
    consumed: int


class GeometricSkipper:
    """Samples gaps between accepted increments for a fixed probability.

    Parameters
    ----------
    rng:
        The bit-metered random source.
    """

    __slots__ = ("_rng",)

    def __init__(self, rng: BitBudgetedRandom) -> None:
        self._rng = rng

    def step(self, p: float, budget: int) -> SkipOutcome:
        """Advance through at most ``budget`` increments at accept rate ``p``.

        Equivalent in distribution to flipping ``Bernoulli(p)`` up to
        ``budget`` times and stopping at the first success.
        """
        if budget <= 0:
            raise ParameterError(f"budget must be positive, got {budget}")
        if p <= 0.0:
            return SkipOutcome(accepted=False, consumed=budget)
        if p >= 1.0:
            return SkipOutcome(accepted=True, consumed=1)
        gap = self._rng.geometric(p)
        if gap <= budget:
            return SkipOutcome(accepted=True, consumed=gap)
        return SkipOutcome(accepted=False, consumed=budget)

    def step_pow2(self, t: int, budget: int) -> SkipOutcome:
        """Like :meth:`step` for the dyadic probability ``2**-t``."""
        if budget <= 0:
            raise ParameterError(f"budget must be positive, got {budget}")
        if t == 0:
            return SkipOutcome(accepted=True, consumed=1)
        gap = self._rng.geometric_pow2(t)
        if gap <= budget:
            return SkipOutcome(accepted=True, consumed=gap)
        return SkipOutcome(accepted=False, consumed=budget)
