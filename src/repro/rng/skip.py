"""Distribution-exact fast-forward over rejected increments.

Running the Figure 1 experiment naively means simulating ~7.5e5 Bernoulli
trials per run for 10,000 runs — most of them rejections that do not change
the counter's state.  While an approximate counter's state is unchanged its
accept probability ``p`` is constant, so the index of the next *accepted*
increment is the current index plus a Geometric(``p``) gap.

:class:`GeometricSkipper` packages this: the counter tells it the current
accept probability and how many increments remain, and it answers either
"the next accept happens after ``g`` increments" or "no accept happens in
the remaining budget" — with exactly the probabilities the one-at-a-time
simulation would produce.  Counters use this inside ``add(n)``.

Bit-metering contract
---------------------
Skip-ahead must never report *more* random bits than the per-unit loop
it replaces, or the bit accounting the paper cares about would stop
being an honest lower bound on simulation cost:

* ``step(p, budget)`` draws one 53-bit inverse-CDF geometric; a single
  per-unit ``bernoulli(p)`` trial already costs 53 bits, so the skip is
  never more expensive (equal at ``budget == 1``).
* ``step_pow2(t, budget)`` runs the bit-exact coin-AND protocol —
  identical bit stream to per-unit ``bernoulli_pow2`` trials, capped at
  ``budget`` failures — whenever the 53-bit inverse-CDF draw could cost
  more than the per-unit loop's worst-case floor of 1 bit per trial
  (``budget < 53``), or whenever ``t <= 4`` where the protocol is cheap
  and exact anyway.  Only for ``t > 4`` *and* ``budget >= 53`` does it
  spend the single 53-bit draw.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.rng.bitstream import BitBudgetedRandom

__all__ = ["SkipOutcome", "GeometricSkipper"]


@dataclass(frozen=True, slots=True)
class SkipOutcome:
    """Result of one skip-ahead step.

    Attributes
    ----------
    accepted:
        True if an accepted increment occurred within the budget.
    consumed:
        How many increments of the budget were consumed.  When
        ``accepted`` is True the accepted increment is the *last* of the
        consumed ones; otherwise ``consumed`` equals the whole budget.
    """

    accepted: bool
    consumed: int


class GeometricSkipper:
    """Samples gaps between accepted increments for a fixed probability.

    Parameters
    ----------
    rng:
        The bit-metered random source.
    """

    __slots__ = ("_rng",)

    def __init__(self, rng: BitBudgetedRandom) -> None:
        self._rng = rng

    def step(self, p: float, budget: int) -> SkipOutcome:
        """Advance through at most ``budget`` increments at accept rate ``p``.

        Equivalent in distribution to flipping ``Bernoulli(p)`` up to
        ``budget`` times and stopping at the first success.
        """
        if budget <= 0:
            raise ParameterError(f"budget must be positive, got {budget}")
        if p <= 0.0:
            return SkipOutcome(accepted=False, consumed=budget)
        if p >= 1.0:
            return SkipOutcome(accepted=True, consumed=1)
        gap = self._rng.geometric(p)
        if gap <= budget:
            return SkipOutcome(accepted=True, consumed=gap)
        return SkipOutcome(accepted=False, consumed=budget)

    #: One inverse-CDF geometric draw costs 53 bits; a per-unit trial
    #: costs at least 1 bit, so below this budget the capped coin
    #: protocol is never more expensive than the CDF draw would be.
    _CDF_BITS = 53

    def step_pow2(self, t: int, budget: int) -> SkipOutcome:
        """Like :meth:`step` for the dyadic probability ``2**-t``.

        Bit-exact for small ``t`` or small budgets: the capped coin-AND
        protocol consumes the *same bit stream* the per-unit
        ``bernoulli_pow2`` loop would, and stops at the first success or
        at ``budget`` failures — it never draws past the budget.  For
        ``t > 4`` with ``budget >= 53`` it spends one 53-bit inverse-CDF
        geometric instead (see the module's bit-metering contract).
        """
        if budget <= 0:
            raise ParameterError(f"budget must be positive, got {budget}")
        if t == 0:
            return SkipOutcome(accepted=True, consumed=1)
        if t <= 4 or budget < self._CDF_BITS:
            bernoulli_pow2 = self._rng.bernoulli_pow2
            for gap in range(1, budget + 1):
                if bernoulli_pow2(t):
                    return SkipOutcome(accepted=True, consumed=gap)
            return SkipOutcome(accepted=False, consumed=budget)
        gap = self._rng.geometric_pow2(t)
        if gap <= budget:
            return SkipOutcome(accepted=True, consumed=gap)
        return SkipOutcome(accepted=False, consumed=budget)
