"""Deterministic pseudo-random generators implemented from scratch.

Two generators are provided:

* :class:`SplitMix64` — Steele, Lea & Flood's 64-bit mixer.  It has a
  trivially splittable state (a 64-bit counter), which makes it ideal for
  deriving independent child seeds, and it is the standard seeder for the
  xoshiro family.
* :class:`Xoshiro256StarStar` — Blackman & Vigna's xoshiro256**, a
  high-quality general-purpose generator with 256 bits of state.

Both are pure Python and fully deterministic given a seed, so every
experiment in this repository is reproducible bit for bit.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

#: Weyl-sequence increment used by SplitMix64 (the "golden gamma").
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def _rotl(x: int, k: int) -> int:
    """Rotate the 64-bit integer ``x`` left by ``k`` bits."""
    return ((x << k) | (x >> (64 - k))) & _MASK64


def mix64(z: int) -> int:
    """Apply SplitMix64's finalizing mixer to a 64-bit integer.

    This is a strong 64-bit bijection (variant 13 of Stafford's mixers) and
    is also used standalone by :func:`derive_seed`.
    """
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_seed(seed: int, *keys: int) -> int:
    """Derive a child seed from ``seed`` and a tuple of integer ``keys``.

    The derivation hashes the keys into the seed one at a time with
    :func:`mix64`, so distinct key tuples yield (with overwhelming
    probability) unrelated child seeds.  Used to give each counter in a
    :class:`~repro.analytics.counter_bank.CounterBank` and each trial of an
    experiment its own independent stream.
    """
    z = seed & _MASK64
    for key in keys:
        z = mix64((z + _GOLDEN_GAMMA) ^ (key & _MASK64))
    return mix64(z + _GOLDEN_GAMMA)


class SplitMix64:
    """Steele-Lea-Flood SplitMix64 generator.

    Parameters
    ----------
    seed:
        Any Python integer; only the low 64 bits are used.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next64(self) -> int:
        """Return the next 64-bit pseudo-random integer."""
        self._state = (self._state + _GOLDEN_GAMMA) & _MASK64
        return mix64(self._state)

    def split(self) -> "SplitMix64":
        """Return a new generator seeded from this one's stream."""
        return SplitMix64(self.next64())


class Xoshiro256StarStar:
    """Blackman-Vigna xoshiro256** generator.

    State is seeded by expanding ``seed`` through SplitMix64, as the
    authors recommend; an all-zero state is impossible by construction
    because SplitMix64's outputs are equidistributed over 64-bit values
    and four consecutive zeros never occur for any seed.
    """

    __slots__ = ("_s0", "_s1", "_s2", "_s3")

    def __init__(self, seed: int) -> None:
        seeder = SplitMix64(seed)
        self._s0 = seeder.next64()
        self._s1 = seeder.next64()
        self._s2 = seeder.next64()
        self._s3 = seeder.next64()

    def next64(self) -> int:
        """Return the next 64-bit pseudo-random integer."""
        s0, s1, s2, s3 = self._s0, self._s1, self._s2, self._s3
        result = (_rotl((s1 * 5) & _MASK64, 7) * 9) & _MASK64
        t = (s1 << 17) & _MASK64
        s2 ^= s0
        s3 ^= s1
        s1 ^= s2
        s0 ^= s3
        s2 ^= t
        s3 = _rotl(s3, 45)
        self._s0, self._s1, self._s2, self._s3 = s0, s1, s2, s3
        return result

    def jump_seed(self) -> int:
        """Return a 64-bit value suitable for seeding a child generator."""
        return mix64(self.next64() ^ _GOLDEN_GAMMA)
